#include "tensor/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace pelta {

int parallel_thread_count() {
  static const int count = [] {
    if (const char* env = std::getenv("PELTA_THREADS")) {
      const int v = std::atoi(env);
      if (v >= 1) return v;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }();
  return count;
}

void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& body) {
  if (n <= 0) return;
  const int threads = static_cast<int>(std::min<std::int64_t>(parallel_thread_count(), n));
  if (threads == 1) {
    for (std::int64_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<std::int64_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::int64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock{error_mutex};
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pelta
