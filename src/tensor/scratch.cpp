#include "tensor/scratch.h"

#include <algorithm>
#include <new>

#include "tensor/check.h"

namespace pelta {

namespace {

constexpr std::size_t k_alignment = scratch_arena::k_claim_alignment;  // one cache line
constexpr std::size_t k_min_block_floats = 1024;

float* allocate_floats(std::size_t count) {
  return static_cast<float*>(
      ::operator new(count * sizeof(float), std::align_val_t{k_alignment}));
}

void free_floats(float* p) {
  if (p != nullptr) ::operator delete(p, std::align_val_t{k_alignment});
}

/// Round a checkout up so every claim starts 64-byte aligned.
std::size_t align_floats(std::size_t count) {
  constexpr std::size_t unit = k_alignment / sizeof(float);
  return (count + unit - 1) / unit * unit;
}

}  // namespace

scratch_buffer::scratch_buffer(scratch_buffer&& other) noexcept
    : arena_{other.arena_},
      data_{other.data_},
      count_{other.count_},
      block_{other.block_},
      prev_used_{other.prev_used_} {
  other.arena_ = nullptr;
  other.data_ = nullptr;
  other.count_ = 0;
}

scratch_buffer& scratch_buffer::operator=(scratch_buffer&& other) noexcept {
  if (this != &other) {
    if (arena_ != nullptr) arena_->release(*this);
    arena_ = other.arena_;
    data_ = other.data_;
    count_ = other.count_;
    block_ = other.block_;
    prev_used_ = other.prev_used_;
    other.arena_ = nullptr;
    other.data_ = nullptr;
    other.count_ = 0;
  }
  return *this;
}

scratch_buffer::~scratch_buffer() {
  if (arena_ != nullptr) arena_->release(*this);
}

scratch_arena& scratch_arena::local() {
  static thread_local scratch_arena arena;
  return arena;
}

scratch_arena::scratch_arena() = default;

scratch_arena::~scratch_arena() {
  for (block& b : blocks_) free_floats(b.data);
}

std::size_t scratch_arena::capacity_floats() const {
  std::size_t total = 0;
  for (const block& b : blocks_) total += b.capacity;
  return total;
}

scratch_buffer scratch_arena::take(std::size_t count) {
  if (count == 0) return scratch_buffer{};
  const std::size_t claim = align_floats(count);
  if (blocks_.empty() || blocks_.back().used + claim > blocks_.back().capacity) {
    // Open a fresh block; existing blocks keep their live claims in place.
    // Doubling the total keeps growth logarithmic until the high-water mark
    // of the call pattern is reached, after which consolidation (below)
    // makes this branch unreachable.
    const std::size_t cap =
        std::max({claim, 2 * capacity_floats(), k_min_block_floats});
    blocks_.push_back(block{allocate_floats(cap), cap, 0});
    ++block_allocations_;
  }
  block& b = blocks_.back();
  float* p = b.data + b.used;
  const std::size_t prev_used = b.used;
  b.used += claim;
  used_total_ += claim;
  high_water_ = std::max(high_water_, used_total_);
  ++outstanding_;
  return scratch_buffer{this, p, count, blocks_.size() - 1, prev_used};
}

void scratch_arena::release(const scratch_buffer& buf) {
  PELTA_CHECK_MSG(outstanding_ > 0 && buf.block_ < blocks_.size(),
                  "scratch_buffer released into a foreign arena state");
  // Strict LIFO: every block newer than the claim's is already empty and
  // the claim sits at the top of its own block.
  for (std::size_t i = buf.block_ + 1; i < blocks_.size(); ++i)
    PELTA_CHECK_MSG(blocks_[i].used == 0, "scratch_buffer released out of LIFO order");
  block& b = blocks_[buf.block_];
  PELTA_CHECK_MSG(b.used == buf.prev_used_ + align_floats(buf.count_),
                  "scratch_buffer released out of LIFO order");
  used_total_ -= b.used - buf.prev_used_;
  b.used = buf.prev_used_;
  --outstanding_;
  // Idle and fragmented: collapse to one block covering the high-water
  // pattern so the next call sequence runs allocation-free.
  if (outstanding_ == 0 && blocks_.size() > 1) {
    for (block& old : blocks_) free_floats(old.data);
    blocks_.clear();
    const std::size_t cap = std::max(align_floats(high_water_), k_min_block_floats);
    blocks_.push_back(block{allocate_floats(cap), cap, 0});
    ++block_allocations_;
  }
}

}  // namespace pelta
