// Blocked GEMM micro-kernels. See kernels.h for the determinism contract.
//
// Structure (shared by the plain and transposed-B entry points):
//   * k-blocking: the k range is walked in KC-sized blocks, ascending, so a
//     B column panel stays hot in cache while every row tile reuses it.
//     Partial sums round-trip through `out` between blocks — a float
//     store/load, value-exact — and per-element k-order is unchanged.
//   * Register tiles: MR x W accumulator blocks live across the whole
//     k-loop of a block, so no partial sum touches memory inside it and
//     each B row load is reused across MR output rows. The fixed-trip
//     inner loops auto-vectorize; every path spells the accumulation as the
//     same `acc += a * b` / masked-select expression, which keeps full
//     tiles, tails, and any parallel row split bit-identical.
//   * Zero-skip gate: decided ONCE per call from the operand's finiteness
//     (kernels.h). Inside a tile the common all-rows-nonzero k-step takes a
//     branch-free FMA path; a k-step where some row of A is zero falls back
//     to a masked select `av != 0 ? acc + av*b : acc` — bit-exact with the
//     classic per-element skip, without a branch in the inner loop.
//   * Column tails (n % 16) never run narrow scalar loops: the tail columns
//     are packed into a zero-padded 16-wide panel from the thread's scratch
//     arena and full-width tiles run over it, storing only the real
//     columns. Pad lanes cost nothing semantically (they are never stored)
//     and the real columns see the identical operation sequence.
//   * Transposed-B: B arrives as [n, k] row-major. Each (KC x 16) panel is
//     repacked into an L1-resident buffer (blocked transpose, sequential
//     reads), then the same register tiles run over it. The pack touches
//     each B element once per sweep and is reused by every row tile —
//     unlike the old cols_t path, which materialized the full [k, n]
//     transpose per image with strided writes.
#include "tensor/kernels.h"

#include <algorithm>

#include "tensor/scratch.h"

namespace pelta::ops::detail {

namespace {

constexpr std::int64_t MR = k_gemm_mr;    // 4  — rows per register tile
constexpr std::int64_t WMID = k_gemm_nr;  // 16 — packed/mid tile width
constexpr std::int64_t WMAIN = 4 * WMID;  // 64 — main tile width
constexpr std::int64_t KC = 1024;         // k-block: B panel KC*WMAIN = 256 KB

// One ROWS x W register tile over k-block rows [0, kc) of B.
//   a:   ROWS rows, stride lda, k-offset already applied
//   b:   kc rows, stride ldb (ldb == n on B itself, WMID on a packed panel)
//   out: ROWS rows, stride ldo; JSTORE columns are written back (JSTORE < W
//        only for the zero-padded edge panel, whose pad lanes are compute-
//        only and never touch memory)
template <int ROWS, std::int64_t W, bool Skip, std::int64_t JSTORE = W>
inline void gemm_tile(const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
                      float* out, std::int64_t ldo, std::int64_t kc) {
  static_assert(JSTORE <= W);
  float acc[ROWS][W];
  for (int r = 0; r < ROWS; ++r) {
    for (std::int64_t j = 0; j < JSTORE; ++j) acc[r][j] = out[r * ldo + j];
    for (std::int64_t j = JSTORE; j < W; ++j) acc[r][j] = 0.0f;  // pad lanes
  }
  for (std::int64_t kk = 0; kk < kc; ++kk) {
    const float* brow = b + kk * ldb;
    float av[ROWS];
    bool any_zero = false;
    for (int r = 0; r < ROWS; ++r) {
      av[r] = a[r * lda + kk];
      any_zero |= (av[r] == 0.0f);
    }
    // The W == WMID instantiations carry a "GCC unroll 1" pragma: GCC
    // completely unrolls a bare 16-trip loop into scalar straight-line code
    // that SLP fails to re-vectorize (observed 15x slowdown); kept
    // loop-shaped, the loop vectorizer collapses it into full-width vector
    // ops. The wide instantiations vectorize best as plain loops, so the
    // two forms are split on W — the expressions are identical.
    if (!Skip || !any_zero) {
      // Common case: no zero anywhere in the tile's A column — one
      // predictable branch guards a pure FMA block.
      if constexpr (W == WMID) {
        for (int r = 0; r < ROWS; ++r)
#pragma GCC unroll 1
          for (std::int64_t j = 0; j < W; ++j) acc[r][j] = fmadd(av[r], brow[j], acc[r][j]);
      } else {
        for (int r = 0; r < ROWS; ++r)
          for (std::int64_t j = 0; j < W; ++j) acc[r][j] = fmadd(av[r], brow[j], acc[r][j]);
      }
    } else {
      // Some row skips: masked select, bit-exact with skipping the update.
      if constexpr (W == WMID) {
        for (int r = 0; r < ROWS; ++r)
#pragma GCC unroll 1
          for (std::int64_t j = 0; j < W; ++j)
            acc[r][j] = av[r] != 0.0f ? fmadd(av[r], brow[j], acc[r][j]) : acc[r][j];
      } else {
        for (int r = 0; r < ROWS; ++r)
          for (std::int64_t j = 0; j < W; ++j)
            acc[r][j] = av[r] != 0.0f ? fmadd(av[r], brow[j], acc[r][j]) : acc[r][j];
      }
    }
  }
  for (int r = 0; r < ROWS; ++r)
    for (std::int64_t j = 0; j < JSTORE; ++j) out[r * ldo + j] = acc[r][j];
}

// All row tiles of one column panel: MR blocks, then the 3/2/1 remainder
// through the same template body at smaller ROWS. JSTORE as in gemm_tile.
template <std::int64_t W, bool Skip, std::int64_t JSTORE = W>
inline void panel_rows(const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
                       float* out, std::int64_t ldo, std::int64_t kc, std::int64_t m) {
  std::int64_t i = 0;
  for (; i + MR <= m; i += MR)
    gemm_tile<MR, W, Skip, JSTORE>(a + i * lda, lda, b, ldb, out + i * ldo, ldo, kc);
  switch (m - i) {
    case 3: gemm_tile<3, W, Skip, JSTORE>(a + i * lda, lda, b, ldb, out + i * ldo, ldo, kc); break;
    case 2: gemm_tile<2, W, Skip, JSTORE>(a + i * lda, lda, b, ldb, out + i * ldo, ldo, kc); break;
    case 1: gemm_tile<1, W, Skip, JSTORE>(a + i * lda, lda, b, ldb, out + i * ldo, ldo, kc); break;
    default: break;
  }
}

// Edge panel: the last n % 16 columns, zero-padded to a full 16-wide packed
// panel (row stride ldb) so the tile loops stay fixed-trip. Dispatch on the
// store width.
template <bool Skip>
void panel_rows_edge(const float* a, std::int64_t lda, const float* panel, std::int64_t ldb,
                     float* out, std::int64_t ldo, std::int64_t kc, std::int64_t m,
                     std::int64_t jn) {
  switch (jn) {
    case 1: panel_rows<WMID, Skip, 1>(a, lda, panel, ldb, out, ldo, kc, m); break;
    case 2: panel_rows<WMID, Skip, 2>(a, lda, panel, ldb, out, ldo, kc, m); break;
    case 3: panel_rows<WMID, Skip, 3>(a, lda, panel, ldb, out, ldo, kc, m); break;
    case 4: panel_rows<WMID, Skip, 4>(a, lda, panel, ldb, out, ldo, kc, m); break;
    case 5: panel_rows<WMID, Skip, 5>(a, lda, panel, ldb, out, ldo, kc, m); break;
    case 6: panel_rows<WMID, Skip, 6>(a, lda, panel, ldb, out, ldo, kc, m); break;
    case 7: panel_rows<WMID, Skip, 7>(a, lda, panel, ldb, out, ldo, kc, m); break;
    case 8: panel_rows<WMID, Skip, 8>(a, lda, panel, ldb, out, ldo, kc, m); break;
    case 9: panel_rows<WMID, Skip, 9>(a, lda, panel, ldb, out, ldo, kc, m); break;
    case 10: panel_rows<WMID, Skip, 10>(a, lda, panel, ldb, out, ldo, kc, m); break;
    case 11: panel_rows<WMID, Skip, 11>(a, lda, panel, ldb, out, ldo, kc, m); break;
    case 12: panel_rows<WMID, Skip, 12>(a, lda, panel, ldb, out, ldo, kc, m); break;
    case 13: panel_rows<WMID, Skip, 13>(a, lda, panel, ldb, out, ldo, kc, m); break;
    case 14: panel_rows<WMID, Skip, 14>(a, lda, panel, ldb, out, ldo, kc, m); break;
    case 15: panel_rows<WMID, Skip, 15>(a, lda, panel, ldb, out, ldo, kc, m); break;
    default: break;
  }
}

template <bool Skip>
void gemm_blocked(const float* a, const float* b, float* out, std::int64_t m, std::int64_t k,
                  std::int64_t n) {
  const std::int64_t jn_edge = n % WMID;
  scratch_buffer panel_buf;
  if (jn_edge != 0)
    panel_buf = scratch_arena::local().take(static_cast<std::size_t>(KC * WMID));
  for (std::int64_t k0 = 0; k0 < k; k0 += KC) {
    const std::int64_t kc = std::min(KC, k - k0);
    const float* ablk = a + k0;
    const float* bblk = b + k0 * n;
    std::int64_t j = 0;
    for (; j + WMAIN <= n; j += WMAIN)
      panel_rows<WMAIN, Skip>(ablk, k, bblk + j, n, out + j, n, kc, m);
    for (; j + WMID <= n; j += WMID)
      panel_rows<WMID, Skip>(ablk, k, bblk + j, n, out + j, n, kc, m);
    if (j < n) {
      // Pack the ragged edge columns, zero-padded to WMID.
      float* panel = panel_buf.data();
      for (std::int64_t kk = 0; kk < kc; ++kk) {
        const float* src = bblk + kk * n + j;
        float* dst = panel + kk * WMID;
        for (std::int64_t jj = 0; jj < jn_edge; ++jj) dst[jj] = src[jj];
        for (std::int64_t jj = jn_edge; jj < WMID; ++jj) dst[jj] = 0.0f;
      }
      panel_rows_edge<Skip>(ablk, k, panel, WMID, out + j, n, kc, m, jn_edge);
    }
  }
}

template <bool Skip>
void gemm_bt_blocked(const float* a, const float* bt, float* out, std::int64_t m, std::int64_t k,
                     std::int64_t n) {
  // Cache-resident pack buffer for one (kc x WMAIN) B panel, reused across
  // the whole call — and across calls, via the thread's arena.
  scratch_buffer panel_buf = scratch_arena::local().take(static_cast<std::size_t>(KC * WMAIN));
  float* panel = panel_buf.data();
  for (std::int64_t k0 = 0; k0 < k; k0 += KC) {
    const std::int64_t kc = std::min(KC, k - k0);
    const float* ablk = a + k0;
    for (std::int64_t j = 0; j < n; j += WMAIN) {
      const std::int64_t jw = std::min(WMAIN, n - j);
      // Blocked transpose of B rows [j, j+jw) x k-range [k0, k0+kc): reads
      // are sequential along each B row; the ragged tail of the last
      // 16-wide lane group is zero-padded.
      const std::int64_t jw_pad = (jw + WMID - 1) / WMID * WMID;
      for (std::int64_t jj = 0; jj < jw; ++jj) {
        const float* src = bt + (j + jj) * k + k0;
        for (std::int64_t kk = 0; kk < kc; ++kk) panel[kk * WMAIN + jj] = src[kk];
      }
      if (jw < jw_pad)
        for (std::int64_t kk = 0; kk < kc; ++kk)
          for (std::int64_t jj = jw; jj < jw_pad; ++jj) panel[kk * WMAIN + jj] = 0.0f;
      // Full-width tiles over the packed panel (ldb = WMAIN), then 16-wide
      // lane groups, then the store-masked edge.
      if (jw == WMAIN) {
        panel_rows<WMAIN, Skip>(ablk, k, panel, WMAIN, out + j, n, kc, m);
      } else {
        std::int64_t js = 0;
        for (; js + WMID <= jw; js += WMID)
          panel_rows<WMID, Skip>(ablk, k, panel + js, WMAIN, out + j + js, n, kc, m);
        if (js < jw)
          panel_rows_edge<Skip>(ablk, k, panel + js, WMAIN, out + j + js, n, kc, m, jw - js);
      }
    }
  }
}

bool any_zero_in(const float* p, std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i)
    if (p[i] == 0.0f) return true;
  return false;
}

}  // namespace

void gemm_accumulate(const float* a, const float* b, float* out, std::int64_t m, std::int64_t k,
                     std::int64_t n, finite_cache& b_finite) {
  if (m <= 0 || n <= 0 || k <= 0) return;  // no terms: out is the base, untouched
  // Gate decided once per call, never inside the loops. A is pre-scanned
  // first (O(m*k), a 1/(2n) fraction of the GEMM): a dense A has nothing to
  // skip, so — exactly like the old lazy gate — it neither consults nor
  // scans B, and it runs the branch-free dense path outright. Only a call
  // whose A contains zeros pays the (cached, once-per-operand) B scan.
  if (any_zero_in(a, m * k) && b_finite.check(b, k * n))
    gemm_blocked<true>(a, b, out, m, k, n);
  else
    gemm_blocked<false>(a, b, out, m, k, n);
}

void gemm_accumulate_bt(const float* a, const float* bt, float* out, std::int64_t m,
                        std::int64_t k, std::int64_t n, finite_cache& bt_finite) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  if (any_zero_in(a, m * k) && bt_finite.check(bt, n * k))
    gemm_bt_blocked<true>(a, bt, out, m, k, n);
  else
    gemm_bt_blocked<false>(a, bt, out, m, k, n);
}

}  // namespace pelta::ops::detail
