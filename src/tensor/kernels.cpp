// Blocked GEMM micro-kernels. See kernels.h for the determinism contract.
//
// Structure (shared by the plain and transposed-B entry points):
//   * k-blocking: the k range is walked in KC-sized blocks, ascending, so a
//     B column panel stays hot in cache while every row tile reuses it.
//     Partial sums round-trip through `out` between blocks — a float
//     store/load, value-exact — and per-element k-order is unchanged.
//   * Register tiles: MR x W accumulator blocks live across the whole
//     k-loop of a block, so no partial sum touches memory inside it and
//     each B row load is reused across MR output rows. The fixed-trip
//     inner loops auto-vectorize; every path spells the accumulation as the
//     same `acc += a * b` / masked-select expression, which keeps full
//     tiles, tails, and any parallel row split bit-identical.
//   * Zero-skip gate: decided ONCE per call from the operand's finiteness
//     (kernels.h). Inside a tile the common all-rows-nonzero k-step takes a
//     branch-free FMA path; a k-step where some row of A is zero falls back
//     to a masked select `av != 0 ? acc + av*b : acc` — bit-exact with the
//     classic per-element skip, without a branch in the inner loop.
//   * Column tails (n % 16) never run narrow scalar loops: the tail columns
//     are packed into a zero-padded 16-wide panel from the thread's scratch
//     arena and full-width tiles run over it, storing only the real
//     columns. Pad lanes cost nothing semantically (they are never stored)
//     and the real columns see the identical operation sequence.
//   * Transposed-B: B arrives as [n, k] row-major. Each (KC x 16) panel is
//     repacked into an L1-resident buffer (blocked transpose, sequential
//     reads), then the same register tiles run over it. The pack touches
//     each B element once per sweep and is reused by every row tile —
//     unlike the old cols_t path, which materialized the full [k, n]
//     transpose per image with strided writes.
#include "tensor/kernels.h"

#include <algorithm>
#include <cstring>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "tensor/check.h"
#include "tensor/scratch.h"

namespace pelta::ops::detail {

namespace {

constexpr std::int64_t MR = k_gemm_mr;    // 4  — rows per register tile
constexpr std::int64_t WMID = k_gemm_nr;  // 16 — packed/mid tile width
constexpr std::int64_t WMAIN = 4 * WMID;  // 64 — main tile width
constexpr std::int64_t KC = 1024;         // k-block: B panel KC*WMAIN = 256 KB

// One ROWS x W register tile over k-block rows [0, kc) of B.
//   a:   ROWS rows, stride lda, k-offset already applied
//   b:   kc rows, stride ldb (ldb == n on B itself, WMID on a packed panel)
//   out: ROWS rows, stride ldo; JSTORE columns are written back (JSTORE < W
//        only for the zero-padded edge panel, whose pad lanes are compute-
//        only and never touch memory)
template <int ROWS, std::int64_t W, bool Skip, std::int64_t JSTORE = W>
inline void gemm_tile(const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
                      float* out, std::int64_t ldo, std::int64_t kc) {
  static_assert(JSTORE <= W);
  float acc[ROWS][W];
  for (int r = 0; r < ROWS; ++r) {
    for (std::int64_t j = 0; j < JSTORE; ++j) acc[r][j] = out[r * ldo + j];
    for (std::int64_t j = JSTORE; j < W; ++j) acc[r][j] = 0.0f;  // pad lanes
  }
  for (std::int64_t kk = 0; kk < kc; ++kk) {
    const float* brow = b + kk * ldb;
    float av[ROWS];
    bool any_zero = false;
    for (int r = 0; r < ROWS; ++r) {
      av[r] = a[r * lda + kk];
      any_zero |= (av[r] == 0.0f);
    }
    // The W == WMID instantiations carry a "GCC unroll 1" pragma: GCC
    // completely unrolls a bare 16-trip loop into scalar straight-line code
    // that SLP fails to re-vectorize (observed 15x slowdown); kept
    // loop-shaped, the loop vectorizer collapses it into full-width vector
    // ops. The wide instantiations vectorize best as plain loops, so the
    // two forms are split on W — the expressions are identical.
    if (!Skip || !any_zero) {
      // Common case: no zero anywhere in the tile's A column — one
      // predictable branch guards a pure FMA block.
      if constexpr (W == WMID) {
        for (int r = 0; r < ROWS; ++r)
#pragma GCC unroll 1
          for (std::int64_t j = 0; j < W; ++j) acc[r][j] = fmadd(av[r], brow[j], acc[r][j]);
      } else {
        for (int r = 0; r < ROWS; ++r)
          for (std::int64_t j = 0; j < W; ++j) acc[r][j] = fmadd(av[r], brow[j], acc[r][j]);
      }
    } else {
      // Some row skips: masked select, bit-exact with skipping the update.
      if constexpr (W == WMID) {
        for (int r = 0; r < ROWS; ++r)
#pragma GCC unroll 1
          for (std::int64_t j = 0; j < W; ++j)
            acc[r][j] = av[r] != 0.0f ? fmadd(av[r], brow[j], acc[r][j]) : acc[r][j];
      } else {
        for (int r = 0; r < ROWS; ++r)
          for (std::int64_t j = 0; j < W; ++j)
            acc[r][j] = av[r] != 0.0f ? fmadd(av[r], brow[j], acc[r][j]) : acc[r][j];
      }
    }
  }
  for (int r = 0; r < ROWS; ++r)
    for (std::int64_t j = 0; j < JSTORE; ++j) out[r * ldo + j] = acc[r][j];
}

// All row tiles of one column panel: MR blocks, then the 3/2/1 remainder
// through the same template body at smaller ROWS. JSTORE as in gemm_tile.
template <std::int64_t W, bool Skip, std::int64_t JSTORE = W>
inline void panel_rows(const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
                       float* out, std::int64_t ldo, std::int64_t kc, std::int64_t m) {
  std::int64_t i = 0;
  for (; i + MR <= m; i += MR)
    gemm_tile<MR, W, Skip, JSTORE>(a + i * lda, lda, b, ldb, out + i * ldo, ldo, kc);
  switch (m - i) {
    case 3: gemm_tile<3, W, Skip, JSTORE>(a + i * lda, lda, b, ldb, out + i * ldo, ldo, kc); break;
    case 2: gemm_tile<2, W, Skip, JSTORE>(a + i * lda, lda, b, ldb, out + i * ldo, ldo, kc); break;
    case 1: gemm_tile<1, W, Skip, JSTORE>(a + i * lda, lda, b, ldb, out + i * ldo, ldo, kc); break;
    default: break;
  }
}

// Edge panel: the last n % 16 columns, zero-padded to a full 16-wide packed
// panel (row stride ldb) so the tile loops stay fixed-trip. Dispatch on the
// store width.
template <bool Skip>
void panel_rows_edge(const float* a, std::int64_t lda, const float* panel, std::int64_t ldb,
                     float* out, std::int64_t ldo, std::int64_t kc, std::int64_t m,
                     std::int64_t jn) {
  switch (jn) {
    case 1: panel_rows<WMID, Skip, 1>(a, lda, panel, ldb, out, ldo, kc, m); break;
    case 2: panel_rows<WMID, Skip, 2>(a, lda, panel, ldb, out, ldo, kc, m); break;
    case 3: panel_rows<WMID, Skip, 3>(a, lda, panel, ldb, out, ldo, kc, m); break;
    case 4: panel_rows<WMID, Skip, 4>(a, lda, panel, ldb, out, ldo, kc, m); break;
    case 5: panel_rows<WMID, Skip, 5>(a, lda, panel, ldb, out, ldo, kc, m); break;
    case 6: panel_rows<WMID, Skip, 6>(a, lda, panel, ldb, out, ldo, kc, m); break;
    case 7: panel_rows<WMID, Skip, 7>(a, lda, panel, ldb, out, ldo, kc, m); break;
    case 8: panel_rows<WMID, Skip, 8>(a, lda, panel, ldb, out, ldo, kc, m); break;
    case 9: panel_rows<WMID, Skip, 9>(a, lda, panel, ldb, out, ldo, kc, m); break;
    case 10: panel_rows<WMID, Skip, 10>(a, lda, panel, ldb, out, ldo, kc, m); break;
    case 11: panel_rows<WMID, Skip, 11>(a, lda, panel, ldb, out, ldo, kc, m); break;
    case 12: panel_rows<WMID, Skip, 12>(a, lda, panel, ldb, out, ldo, kc, m); break;
    case 13: panel_rows<WMID, Skip, 13>(a, lda, panel, ldb, out, ldo, kc, m); break;
    case 14: panel_rows<WMID, Skip, 14>(a, lda, panel, ldb, out, ldo, kc, m); break;
    case 15: panel_rows<WMID, Skip, 15>(a, lda, panel, ldb, out, ldo, kc, m); break;
    default: break;
  }
}

template <bool Skip>
void gemm_blocked(const float* a, const float* b, float* out, std::int64_t m, std::int64_t k,
                  std::int64_t n) {
  const std::int64_t jn_edge = n % WMID;
  scratch_buffer panel_buf;
  if (jn_edge != 0)
    panel_buf = scratch_arena::local().take(static_cast<std::size_t>(KC * WMID));
  for (std::int64_t k0 = 0; k0 < k; k0 += KC) {
    const std::int64_t kc = std::min(KC, k - k0);
    const float* ablk = a + k0;
    const float* bblk = b + k0 * n;
    std::int64_t j = 0;
    for (; j + WMAIN <= n; j += WMAIN)
      panel_rows<WMAIN, Skip>(ablk, k, bblk + j, n, out + j, n, kc, m);
    for (; j + WMID <= n; j += WMID)
      panel_rows<WMID, Skip>(ablk, k, bblk + j, n, out + j, n, kc, m);
    if (j < n) {
      // Pack the ragged edge columns, zero-padded to WMID.
      float* panel = panel_buf.data();
      for (std::int64_t kk = 0; kk < kc; ++kk) {
        const float* src = bblk + kk * n + j;
        float* dst = panel + kk * WMID;
        for (std::int64_t jj = 0; jj < jn_edge; ++jj) dst[jj] = src[jj];
        for (std::int64_t jj = jn_edge; jj < WMID; ++jj) dst[jj] = 0.0f;
      }
      panel_rows_edge<Skip>(ablk, k, panel, WMID, out + j, n, kc, m, jn_edge);
    }
  }
}

template <bool Skip>
void gemm_bt_blocked(const float* a, const float* bt, float* out, std::int64_t m, std::int64_t k,
                     std::int64_t n) {
  // Cache-resident pack buffer for one (kc x WMAIN) B panel, reused across
  // the whole call — and across calls, via the thread's arena.
  scratch_buffer panel_buf = scratch_arena::local().take(static_cast<std::size_t>(KC * WMAIN));
  float* panel = panel_buf.data();
  for (std::int64_t k0 = 0; k0 < k; k0 += KC) {
    const std::int64_t kc = std::min(KC, k - k0);
    const float* ablk = a + k0;
    for (std::int64_t j = 0; j < n; j += WMAIN) {
      const std::int64_t jw = std::min(WMAIN, n - j);
      // Blocked transpose of B rows [j, j+jw) x k-range [k0, k0+kc): reads
      // are sequential along each B row; the ragged tail of the last
      // 16-wide lane group is zero-padded.
      const std::int64_t jw_pad = (jw + WMID - 1) / WMID * WMID;
      for (std::int64_t jj = 0; jj < jw; ++jj) {
        const float* src = bt + (j + jj) * k + k0;
        for (std::int64_t kk = 0; kk < kc; ++kk) panel[kk * WMAIN + jj] = src[kk];
      }
      if (jw < jw_pad)
        for (std::int64_t kk = 0; kk < kc; ++kk)
          for (std::int64_t jj = jw; jj < jw_pad; ++jj) panel[kk * WMAIN + jj] = 0.0f;
      // Full-width tiles over the packed panel (ldb = WMAIN), then 16-wide
      // lane groups, then the store-masked edge.
      if (jw == WMAIN) {
        panel_rows<WMAIN, Skip>(ablk, k, panel, WMAIN, out + j, n, kc, m);
      } else {
        std::int64_t js = 0;
        for (; js + WMID <= jw; js += WMID)
          panel_rows<WMID, Skip>(ablk, k, panel + js, WMAIN, out + j + js, n, kc, m);
        if (js < jw)
          panel_rows_edge<Skip>(ablk, k, panel + js, WMAIN, out + j + js, n, kc, m, jw - js);
      }
    }
  }
}

bool any_zero_in(const float* p, std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i)
    if (p[i] == 0.0f) return true;
  return false;
}

// ---- int8 quantized GEMM ----------------------------------------------------
//
// Mirrors the fp32 structure above — MR x 16 register tiles, k-blocking,
// zero-padded packed edge panels — but every accumulation is int32 and
// therefore exactly associative: no zero-skip gate, no fmadd policy, and
// bit-identity across tile shapes, ISAs and thread splits holds by
// construction rather than by rounding-sequence discipline. The operand
// encoding (shifted-u8 A, 7-bit s8 B, -128*colsum compensation base) is
// documented in kernels.h.

constexpr std::int64_t KGQ = k_qgemm_kg;  // 4 k-bytes per group (one vpmaddubsw lane)
constexpr std::int64_t NRQ = k_qgemm_nr;  // 16-column packed panels
constexpr std::int64_t KCQ = 256;         // k-groups per block: 1024 k, 16 KB panel block

#if defined(__AVX512VNNI__) && defined(__AVX512F__)

// One ROWS x 16 tile, 512-bit VNNI form: a packed k-group is exactly one
// zmm (16 columns x 4 k-bytes), so each (group, row) step is a single
// vpdpbusd — u8*s8 quads summed straight into the 16 int32 column lanes,
// the same exact integers as the AVX2 and scalar forms. Edge panels use
// lane masks instead of staging buffers; masked-off lanes load as zero and
// are never stored.
template <int ROWS>
inline void qgemm_tile_vnni512(const std::uint8_t* a, std::int64_t lda, const std::int8_t* panel,
                               std::int32_t* out, std::int64_t ldo, std::int64_t groups,
                               std::int64_t jn) {
  const __mmask16 lanes = static_cast<__mmask16>((1u << jn) - 1u);
  __m512i acc[ROWS];
  for (int r = 0; r < ROWS; ++r) acc[r] = _mm512_maskz_loadu_epi32(lanes, out + r * ldo);
  for (std::int64_t g = 0; g < groups; ++g) {
    const __m512i b = _mm512_loadu_si512(panel + g * NRQ * KGQ);
    for (int r = 0; r < ROWS; ++r) {
      std::int32_t a4;
      std::memcpy(&a4, a + r * lda + g * KGQ, sizeof(a4));
      acc[r] = _mm512_dpbusd_epi32(acc[r], _mm512_set1_epi32(a4), b);
    }
  }
  for (int r = 0; r < ROWS; ++r) _mm512_mask_storeu_epi32(out + r * ldo, lanes, acc[r]);
}

#elif defined(__AVX2__)

// One ROWS x 16 tile over `groups` k-groups of a packed panel. Per group a
// row contributes 4 consecutive shifted-u8 bytes, broadcast as one 32-bit
// lane. With VNNI one vpdpbusd forms the u8*s8 quad dot product straight
// into the int32 column lanes; the plain-AVX2 fallback gets the same exact
// integers from vpmaddubsw (|pair| <= 2*255*63 = 32130 < 2^15, so the
// int16 stage cannot saturate) widened by vpmaddwd.
template <int ROWS>
inline void qgemm_tile_avx2(const std::uint8_t* a, std::int64_t lda, const std::int8_t* panel,
                            std::int32_t* out, std::int64_t ldo, std::int64_t groups,
                            std::int64_t jn) {
  __m256i accl[ROWS];  // columns 0..7
  __m256i acch[ROWS];  // columns 8..15
  if (jn == NRQ) {
    for (int r = 0; r < ROWS; ++r) {
      accl[r] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + r * ldo));
      acch[r] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + r * ldo + 8));
    }
  } else {
    alignas(32) std::int32_t tmp[NRQ];
    for (int r = 0; r < ROWS; ++r) {
      for (std::int64_t j = 0; j < jn; ++j) tmp[j] = out[r * ldo + j];
      for (std::int64_t j = jn; j < NRQ; ++j) tmp[j] = 0;  // pad lanes, never stored
      accl[r] = _mm256_load_si256(reinterpret_cast<const __m256i*>(tmp));
      acch[r] = _mm256_load_si256(reinterpret_cast<const __m256i*>(tmp + 8));
    }
  }
#if !(defined(__AVX512VNNI__) && defined(__AVX512VL__)) && !defined(__AVXVNNI__)
  const __m256i ones = _mm256_set1_epi16(1);
#endif
  for (std::int64_t g = 0; g < groups; ++g) {
    const __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(panel + g * NRQ * KGQ));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(panel + g * NRQ * KGQ + 32));
    for (int r = 0; r < ROWS; ++r) {
      std::int32_t a4;
      std::memcpy(&a4, a + r * lda + g * KGQ, sizeof(a4));
      const __m256i av = _mm256_set1_epi32(a4);
#if defined(__AVX512VNNI__) && defined(__AVX512VL__)
      accl[r] = _mm256_dpbusd_epi32(accl[r], av, b0);
      acch[r] = _mm256_dpbusd_epi32(acch[r], av, b1);
#elif defined(__AVXVNNI__)
      accl[r] = _mm256_dpbusd_avx_epi32(accl[r], av, b0);
      acch[r] = _mm256_dpbusd_avx_epi32(acch[r], av, b1);
#else
      const __m256i p0 = _mm256_maddubs_epi16(av, b0);
      const __m256i p1 = _mm256_maddubs_epi16(av, b1);
      accl[r] = _mm256_add_epi32(accl[r], _mm256_madd_epi16(p0, ones));
      acch[r] = _mm256_add_epi32(acch[r], _mm256_madd_epi16(p1, ones));
#endif
    }
  }
  if (jn == NRQ) {
    for (int r = 0; r < ROWS; ++r) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + r * ldo), accl[r]);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + r * ldo + 8), acch[r]);
    }
  } else {
    alignas(32) std::int32_t tmp[NRQ];
    for (int r = 0; r < ROWS; ++r) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), accl[r]);
      _mm256_store_si256(reinterpret_cast<__m256i*>(tmp + 8), acch[r]);
      for (std::int64_t j = 0; j < jn; ++j) out[r * ldo + j] = tmp[j];
    }
  }
}

#else

// Portable tile: same packed layout, same per-group 4-byte dot products,
// int32 from the first multiply — integer-exact, so bitwise identical to
// the AVX2 instantiation (pad products are exact zeros on both paths).
template <int ROWS>
inline void qgemm_tile_scalar(const std::uint8_t* a, std::int64_t lda, const std::int8_t* panel,
                              std::int32_t* out, std::int64_t ldo, std::int64_t groups,
                              std::int64_t jn) {
  std::int32_t iacc[ROWS][NRQ];
  for (int r = 0; r < ROWS; ++r) {
    for (std::int64_t j = 0; j < jn; ++j) iacc[r][j] = out[r * ldo + j];
    for (std::int64_t j = jn; j < NRQ; ++j) iacc[r][j] = 0;  // pad lanes
  }
  for (std::int64_t g = 0; g < groups; ++g) {
    const std::int8_t* bg = panel + g * NRQ * KGQ;
    for (int r = 0; r < ROWS; ++r) {
      const std::uint8_t* ag = a + r * lda + g * KGQ;
      for (std::int64_t j = 0; j < NRQ; ++j) {
        const std::int8_t* bj = bg + j * KGQ;
        iacc[r][j] += static_cast<std::int32_t>(ag[0]) * bj[0] +
                      static_cast<std::int32_t>(ag[1]) * bj[1] +
                      static_cast<std::int32_t>(ag[2]) * bj[2] +
                      static_cast<std::int32_t>(ag[3]) * bj[3];
      }
    }
  }
  for (int r = 0; r < ROWS; ++r)
    for (std::int64_t j = 0; j < jn; ++j) out[r * ldo + j] = iacc[r][j];
}

#endif

template <int ROWS>
inline void qgemm_tile(const std::uint8_t* a, std::int64_t lda, const std::int8_t* panel,
                       std::int32_t* out, std::int64_t ldo, std::int64_t groups,
                       std::int64_t jn) {
#if defined(__AVX512VNNI__) && defined(__AVX512F__)
  qgemm_tile_vnni512<ROWS>(a, lda, panel, out, ldo, groups, jn);
#elif defined(__AVX2__)
  qgemm_tile_avx2<ROWS>(a, lda, panel, out, ldo, groups, jn);
#else
  qgemm_tile_scalar<ROWS>(a, lda, panel, out, ldo, groups, jn);
#endif
}

// Primary row-tile height. The 512-bit VNNI tile holds one zmm accumulator
// per row (32 registers available), so 8 rows amortize the panel load and
// keep 8 independent vpdpbusd dependency chains in flight; the ymm forms
// need two accumulators per row and stay at the fp32 MR to fit 16
// registers.
#if defined(__AVX512VNNI__) && defined(__AVX512F__)
constexpr std::int64_t MRQ = 8;
#else
constexpr std::int64_t MRQ = MR;
#endif

// All row tiles of one packed column panel: MRQ blocks, then the remainder
// — the fp32 panel_rows shape, minus Skip/JSTORE templating (the store
// mask is the runtime `jn`; integer results cannot drift).
void qgemm_panel_rows(const std::uint8_t* a, std::int64_t lda, const std::int8_t* panel,
                      std::int32_t* out, std::int64_t ldo, std::int64_t groups, std::int64_t m,
                      std::int64_t jn) {
  std::int64_t i = 0;
  for (; i + MRQ <= m; i += MRQ)
    qgemm_tile<MRQ>(a + i * lda, lda, panel, out + i * ldo, ldo, groups, jn);
  switch (m - i) {
    case 7: qgemm_tile<7>(a + i * lda, lda, panel, out + i * ldo, ldo, groups, jn); break;
    case 6: qgemm_tile<6>(a + i * lda, lda, panel, out + i * ldo, ldo, groups, jn); break;
    case 5: qgemm_tile<5>(a + i * lda, lda, panel, out + i * ldo, ldo, groups, jn); break;
    case 4: qgemm_tile<4>(a + i * lda, lda, panel, out + i * ldo, ldo, groups, jn); break;
    case 3: qgemm_tile<3>(a + i * lda, lda, panel, out + i * ldo, ldo, groups, jn); break;
    case 2: qgemm_tile<2>(a + i * lda, lda, panel, out + i * ldo, ldo, groups, jn); break;
    case 1: qgemm_tile<1>(a + i * lda, lda, panel, out + i * ldo, ldo, groups, jn); break;
    default: break;
  }
}

}  // namespace

void gemm_accumulate(const float* a, const float* b, float* out, std::int64_t m, std::int64_t k,
                     std::int64_t n, finite_cache& b_finite) {
  if (m <= 0 || n <= 0 || k <= 0) return;  // no terms: out is the base, untouched
  // Gate decided once per call, never inside the loops. A is pre-scanned
  // first (O(m*k), a 1/(2n) fraction of the GEMM): a dense A has nothing to
  // skip, so — exactly like the old lazy gate — it neither consults nor
  // scans B, and it runs the branch-free dense path outright. Only a call
  // whose A contains zeros pays the (cached, once-per-operand) B scan.
  if (any_zero_in(a, m * k) && b_finite.check(b, k * n))
    gemm_blocked<true>(a, b, out, m, k, n);
  else
    gemm_blocked<false>(a, b, out, m, k, n);
}

void gemm_accumulate_bt(const float* a, const float* bt, float* out, std::int64_t m,
                        std::int64_t k, std::int64_t n, finite_cache& bt_finite) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  if (any_zero_in(a, m * k) && bt_finite.check(bt, n * k))
    gemm_bt_blocked<true>(a, bt, out, m, k, n);
  else
    gemm_bt_blocked<false>(a, bt, out, m, k, n);
}

void qgemm_pack_b(const std::int8_t* b, std::int64_t k, std::int64_t n, std::int8_t* packed) {
  const std::int64_t groups = qgemm_k_groups(k);
  const std::int64_t panels = (n + NRQ - 1) / NRQ;
  for (std::int64_t p = 0; p < panels; ++p) {
    std::int8_t* dst = packed + p * groups * NRQ * KGQ;
    for (std::int64_t g = 0; g < groups; ++g) {
      for (std::int64_t j = 0; j < NRQ; ++j) {
        const std::int64_t col = p * NRQ + j;
        for (std::int64_t kk = 0; kk < KGQ; ++kk) {
          const std::int64_t row = g * KGQ + kk;
          dst[g * NRQ * KGQ + j * KGQ + kk] =
              (col < n && row < k) ? b[row * n + col] : std::int8_t{0};
        }
      }
    }
  }
}

void qgemm(const std::uint8_t* a, std::int64_t lda, const std::int8_t* packed,
           const std::int32_t* colsum, std::int32_t* out, std::int64_t m, std::int64_t k,
           std::int64_t n) {
  if (m <= 0 || n <= 0) return;
  PELTA_CHECK_MSG(lda >= qgemm_row_stride(k), "qgemm A row stride " << lda << " < k " << k);
  // |base| + |raw| <= k * 63 * (128 + 255): depth 65536 still clears int32.
  PELTA_CHECK_MSG(k <= 65536, "qgemm depth " << k << " overflows int32 accumulation");
  // The -128*colsum compensation is the accumulation base; the tiles then
  // add the raw shifted-u8 products on top (see kernels.h).
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) out[i * n + j] = -128 * colsum[j];
  if (k <= 0) return;
  const std::int64_t groups = qgemm_k_groups(k);
  for (std::int64_t g0 = 0; g0 < groups; g0 += KCQ) {
    const std::int64_t gc = std::min(KCQ, groups - g0);
    const std::uint8_t* ablk = a + g0 * KGQ;
    for (std::int64_t j = 0, p = 0; j < n; j += NRQ, ++p) {
      const std::int8_t* panel = packed + (p * groups + g0) * NRQ * KGQ;
      qgemm_panel_rows(ablk, lda, panel, out + j, n, gc, m, std::min(NRQ, n - j));
    }
  }
}

}  // namespace pelta::ops::detail
