#include "tensor/quantized_tensor.h"

#include <algorithm>
#include <cmath>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "tensor/check.h"
#include "tensor/kernels.h"
#include "tensor/scratch.h"

namespace pelta::quant {

std::int32_t round_nearest_even(float x) {
  const float fl = std::floor(x);
  const float frac = x - fl;
  const std::int32_t lo = static_cast<std::int32_t>(fl);
  if (frac > 0.5f) return lo + 1;
  if (frac < 0.5f) return lo;
  return (lo % 2 == 0) ? lo : lo + 1;  // tie: pick the even neighbour
}

float absmax(const float* x, std::int64_t count) {
  float m = 0.0f;
  for (std::int64_t i = 0; i < count; ++i) m = std::max(m, std::fabs(x[i]));
  return m;
}

float activation_scale(float amax) {
  if (!(amax > 0.0f)) return 1.0f;
  return amax / static_cast<float>(k_act_qmax);
}

namespace {

std::int32_t clamp_code(std::int32_t q, std::int32_t qmax) {
  return std::min(qmax, std::max(-qmax, q));
}

}  // namespace

void quantize_activations(const float* x, std::int64_t count, float scale, std::uint8_t* out) {
  PELTA_CHECK_MSG(scale > 0.0f, "activation scale must be positive, got " << scale);
  const float inv = 1.0f / scale;
  std::int64_t i = 0;
#if defined(__AVX2__)
  // Clamp in fp32 FIRST, then let vcvtps2dq round to nearest-even in
  // hardware. round-then-clamp and clamp-then-round agree on every finite
  // input because rounding is monotone and +-127.0 round to themselves, so
  // this path is bitwise identical to the scalar tail below.
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256 vlo = _mm256_set1_ps(-static_cast<float>(k_act_qmax));
  const __m256 vhi = _mm256_set1_ps(static_cast<float>(k_act_qmax));
  const __m256i vzero_pt = _mm256_set1_epi32(k_act_zero);
  for (; i + 16 <= count; i += 16) {
    __m256 r0 = _mm256_mul_ps(_mm256_loadu_ps(x + i), vinv);
    __m256 r1 = _mm256_mul_ps(_mm256_loadu_ps(x + i + 8), vinv);
    r0 = _mm256_min_ps(_mm256_max_ps(r0, vlo), vhi);
    r1 = _mm256_min_ps(_mm256_max_ps(r1, vlo), vhi);
    const __m256i q0 = _mm256_add_epi32(_mm256_cvtps_epi32(r0), vzero_pt);
    const __m256i q1 = _mm256_add_epi32(_mm256_cvtps_epi32(r1), vzero_pt);
    // Narrow 16 int32 codes (all in [1, 255]) to bytes in memory order:
    // packus interleaves by 128-bit lane, the permute restores q0|q1 order.
    __m256i p16 = _mm256_packus_epi32(q0, q1);
    p16 = _mm256_permute4x64_epi64(p16, _MM_SHUFFLE(3, 1, 2, 0));
    const __m128i p8 = _mm_packus_epi16(_mm256_castsi256_si128(p16),
                                        _mm256_extracti128_si256(p16, 1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), p8);
  }
#endif
  for (; i < count; ++i) {
    const std::int32_t q = clamp_code(round_nearest_even(x[i] * inv), k_act_qmax);
    out[i] = static_cast<std::uint8_t>(q + k_act_zero);
  }
}

float dequantize_activation(std::uint8_t code, float scale) {
  return static_cast<float>(static_cast<std::int32_t>(code) - k_act_zero) * scale;
}

quantized_weights quantize_weights_kn(const float* w, std::int64_t k, std::int64_t n) {
  PELTA_CHECK_MSG(k >= 0 && n >= 0, "quantize_weights_kn shape " << k << "x" << n);
  quantized_weights qw;
  qw.k = k;
  qw.n = n;
  qw.scales.assign(static_cast<std::size_t>(std::max<std::int64_t>(n, 0)), 1.0f);
  qw.colsums.assign(static_cast<std::size_t>(std::max<std::int64_t>(n, 0)), 0);
  qw.codes.assign(static_cast<std::size_t>(k * n), 0);
  for (std::int64_t j = 0; j < n; ++j) {
    float amax = 0.0f;
    for (std::int64_t kk = 0; kk < k; ++kk)
      amax = std::max(amax, std::fabs(w[kk * n + j]));
    const float s = amax > 0.0f ? amax / static_cast<float>(k_weight_qmax) : 1.0f;
    const float inv = 1.0f / s;
    std::int32_t csum = 0;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const std::int32_t q = clamp_code(round_nearest_even(w[kk * n + j] * inv), k_weight_qmax);
      qw.codes[static_cast<std::size_t>(kk * n + j)] = static_cast<std::int8_t>(q);
      csum += q;
    }
    qw.scales[static_cast<std::size_t>(j)] = s;
    qw.colsums[static_cast<std::size_t>(j)] = csum;
  }
  qw.packed.assign(static_cast<std::size_t>(ops::detail::qgemm_packed_size(k, n)), 0);
  if (k > 0 && n > 0) ops::detail::qgemm_pack_b(qw.codes.data(), k, n, qw.packed.data());
  return qw;
}

void dequantize_rows(const std::int32_t* acc, std::int64_t m, std::int64_t n, float act_scale,
                     const float* w_scales, const float* bias, bool fuse_relu, float* out) {
  if (m <= 0 || n <= 0) return;
  // Stage the combined per-column scales once: n multiplies instead of m*n,
  // and every row sees the identical fp32 factor.
  scratch_buffer combined_buf = scratch_arena::local().take(static_cast<std::size_t>(n));
  float* combined = combined_buf.data();
  for (std::int64_t j = 0; j < n; ++j) combined[j] = act_scale * w_scales[j];
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int32_t* arow = acc + i * n;
    float* orow = out + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float base = bias != nullptr ? bias[j] : 0.0f;
      float y = ops::detail::fmadd(static_cast<float>(arow[j]), combined[j], base);
      if (fuse_relu && y < 0.0f) y = 0.0f;
      orow[j] = y;
    }
  }
}

}  // namespace pelta::quant
