// Thread-local scratch arena for kernel workspace buffers.
//
// The conv2d im2col paths (and any other kernel needing a temporary matrix)
// used to heap-allocate a fresh std::vector<float> per call — with the
// thread-pool runtime multiplying how often those kernels run, allocation
// became a steady-state cost on every forward/backward. The arena replaces
// that with a bump allocator: checkouts are LIFO (RAII `scratch_buffer`
// hands the space back in destruction order), capacity grows to the
// high-water mark of one call pattern and is then reused forever, so steady
// state performs ZERO allocations (verified by tests via the
// block_allocations() counter).
//
// Lifetime rules:
//   * One arena per thread (pool workers included), reached via
//     scratch_arena::local(). Never share a scratch_buffer across threads:
//     check out from the thread that uses the memory. A buffer checked out
//     *before* a parallel_for may be READ by pool chunks (the pool's
//     submit/join provides the happens-before), but chunks take their own
//     working buffers from their own thread's arena.
//   * Checkouts are strictly LIFO. Interleaving releases is a programming
//     error: the arena raises PELTA_CHECK on it (from a destructor, that
//     terminates — an allocator invariant breach must never limp on).
//   * take() returns UNINITIALIZED memory (steady state hands back a
//     previously used block). Callers that need zeros must fill — exactly
//     like the fresh std::vector they replaced, minus the allocation.
//   * TSan-clean by construction: no arena state is shared between threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "tensor/check.h"

namespace pelta {

class scratch_arena;

/// RAII checkout of `count` floats from a scratch_arena. Movable (the moved
/// -from buffer forgets its claim), not copyable. Destruction returns the
/// space to the arena; destructions must happen in reverse checkout order.
class scratch_buffer {
public:
  scratch_buffer() = default;
  scratch_buffer(scratch_buffer&& other) noexcept;
  scratch_buffer& operator=(scratch_buffer&& other) noexcept;
  scratch_buffer(const scratch_buffer&) = delete;
  scratch_buffer& operator=(const scratch_buffer&) = delete;
  ~scratch_buffer();

  float* data() const { return data_; }
  std::size_t size() const { return count_; }
  std::span<float> span() const { return {data_, count_}; }

private:
  friend class scratch_arena;
  scratch_buffer(scratch_arena* arena, float* data, std::size_t count, std::size_t block,
                 std::size_t prev_used)
      : arena_{arena}, data_{data}, count_{count}, block_{block}, prev_used_{prev_used} {}

  scratch_arena* arena_ = nullptr;
  float* data_ = nullptr;
  std::size_t count_ = 0;
  std::size_t block_ = 0;      // index of the block the claim lives in
  std::size_t prev_used_ = 0;  // that block's bump offset before the claim
};

/// Typed RAII checkout for non-float kernel workspaces (int8/int32 panels of
/// the quantized GEMM path). Wraps a scratch_buffer, so LIFO discipline,
/// move semantics and release-on-destruction are identical; the element type
/// is a reinterpretation of the same 64-byte-aligned float claim. Obtain via
/// scratch_arena::take_typed<T>() — never by casting a take() result, so the
/// alignment guarantee is asserted in exactly one place.
template <typename T>
class scratch_typed {
public:
  scratch_typed() = default;

  T* data() const { return reinterpret_cast<T*>(buf_.data()); }
  std::size_t size() const { return count_; }
  std::span<T> span() const { return {data(), count_}; }

private:
  friend class scratch_arena;
  scratch_typed(scratch_buffer buf, std::size_t count)
      : buf_{std::move(buf)}, count_{count} {}

  scratch_buffer buf_;
  std::size_t count_ = 0;
};

class scratch_arena {
public:
  /// Every claim — take() or take_typed() — starts on this boundary: one
  /// cache line, wide enough for any current SIMD load. Typed claims assert
  /// it so a future arena change cannot silently misalign int8/int32 panels.
  static constexpr std::size_t k_claim_alignment = 64;

  /// The calling thread's arena (one per thread, created on first use).
  static scratch_arena& local();

  scratch_arena();
  ~scratch_arena();
  scratch_arena(const scratch_arena&) = delete;
  scratch_arena& operator=(const scratch_arena&) = delete;

  /// Check out `count` floats (64-byte aligned, UNINITIALIZED). count == 0
  /// yields an empty buffer without touching the arena.
  scratch_buffer take(std::size_t count);

  /// Check out `count` elements of trivially-copyable type T, explicitly
  /// guaranteed to start k_claim_alignment-aligned (asserted, not assumed).
  /// The claim is rounded up to whole floats of backing store; LIFO rules
  /// and the UNINITIALIZED-contents contract match take().
  template <typename T>
  scratch_typed<T> take_typed(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "scratch_typed claims hold plain kernel panel data only");
    static_assert(alignof(T) <= k_claim_alignment,
                  "element alignment exceeds the arena's claim alignment");
    if (count == 0) return scratch_typed<T>{};
    const std::size_t floats = (count * sizeof(T) + sizeof(float) - 1) / sizeof(float);
    scratch_buffer buf = take(floats);
    PELTA_CHECK_MSG(reinterpret_cast<std::uintptr_t>(buf.data()) % k_claim_alignment == 0,
                    "scratch claim not " << k_claim_alignment << "-byte aligned");
    return scratch_typed<T>{std::move(buf), count};
  }

  /// Total backing-store allocations ever made by this arena. Stops
  /// increasing once capacity has reached the caller's high-water pattern —
  /// the steady-state-zero-allocation property tests assert on.
  std::size_t block_allocations() const { return block_allocations_; }

  /// Largest number of floats ever simultaneously checked out.
  std::size_t high_water_floats() const { return high_water_; }

  /// Currently outstanding checkouts (0 between kernel calls).
  std::size_t outstanding() const { return outstanding_; }

  /// Current backing capacity in floats (all blocks).
  std::size_t capacity_floats() const;

private:
  friend class scratch_buffer;
  void release(const scratch_buffer& buf);

  // Growth never moves live claims: a checkout that does not fit the newest
  // block opens a fresh one (older blocks keep their outstanding claims),
  // and once every claim is back the arena consolidates into one block
  // sized to the high-water mark — after which take() never allocates.
  struct block {
    float* data = nullptr;  // 64-byte aligned, owned by the arena
    std::size_t capacity = 0;
    std::size_t used = 0;
  };
  std::vector<block> blocks_;
  std::size_t used_total_ = 0;  // floats checked out across all blocks
  std::size_t high_water_ = 0;
  std::size_t outstanding_ = 0;
  std::size_t block_allocations_ = 0;
};

}  // namespace pelta
