#include "tensor/conv.h"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.h"
#include "tensor/parallel.h"
#include "tensor/scratch.h"

namespace pelta::ops {

namespace {

std::int64_t conv_out_dim(std::int64_t in, std::int64_t k, std::int64_t stride, std::int64_t pad) {
  return (in + 2 * pad - k) / stride + 1;
}

// True floor/ceil division for a possibly negative numerator, positive b.
std::int64_t div_floor(std::int64_t a, std::int64_t b) {
  return a >= 0 ? a / b : -((-a + b - 1) / b);
}
std::int64_t div_ceil(std::int64_t a, std::int64_t b) {
  return a > 0 ? (a + b - 1) / b : -(-a / b);
}

// im2col: expand one image [C,H,W] into a column matrix
// [C*KH*KW, OH*OW] so the convolution becomes a single matmul.
//
// Padded-edge handling is fringe-only: the in-bounds output window
// [y_lo,y_hi)×[x_lo,x_hi) is solved per (ky,kx) offset up front, the
// interior is copied branch-free (memcpy at stride 1), and zeros go only to
// the pad-clipped fringe — instead of a per-element bounds branch over the
// whole buffer. Output is bit-identical to the branchy form; the gradcheck
// conv suites cover it.
void im2col(const float* img, float* cols, std::int64_t c, std::int64_t h, std::int64_t w,
            std::int64_t kh, std::int64_t kw, std::int64_t stride, std::int64_t pad,
            std::int64_t oh, std::int64_t ow) {
  const std::int64_t spatial = oh * ow;
  std::int64_t row = 0;
  for (std::int64_t ci = 0; ci < c; ++ci)
    for (std::int64_t ky = 0; ky < kh; ++ky)
      for (std::int64_t kx = 0; kx < kw; ++kx, ++row) {
        float* dst = cols + row * spatial;
        // iy = y*stride - pad + ky lies in [0, h) exactly for y in [y_lo, y_hi).
        const std::int64_t y_lo = std::clamp<std::int64_t>(div_ceil(pad - ky, stride), 0, oh);
        const std::int64_t y_hi =
            std::clamp<std::int64_t>(div_floor(h - 1 + pad - ky, stride) + 1, y_lo, oh);
        const std::int64_t x_lo = std::clamp<std::int64_t>(div_ceil(pad - kx, stride), 0, ow);
        const std::int64_t x_hi =
            std::clamp<std::int64_t>(div_floor(w - 1 + pad - kx, stride) + 1, x_lo, ow);
        std::fill(dst, dst + y_lo * ow, 0.0f);
        for (std::int64_t y = y_lo; y < y_hi; ++y) {
          const std::int64_t iy = y * stride - pad + ky;
          const float* src = img + (ci * h + iy) * w;
          float* drow = dst + y * ow;
          std::fill(drow, drow + x_lo, 0.0f);
          if (x_lo < x_hi) {  // guarded: an empty window must not form the pointer
            const float* s = src + (x_lo * stride - pad + kx);
            if (stride == 1) {
              std::copy(s, s + (x_hi - x_lo), drow + x_lo);
            } else {
              for (std::int64_t x = x_lo; x < x_hi; ++x, s += stride) drow[x] = *s;
            }
          }
          std::fill(drow + x_hi, drow + ow, 0.0f);
        }
        std::fill(dst + y_hi * ow, dst + oh * ow, 0.0f);
      }
}

// col2im: scatter-add a column matrix back into an image (adjoint of im2col).
void col2im(const float* cols, float* img, std::int64_t c, std::int64_t h, std::int64_t w,
            std::int64_t kh, std::int64_t kw, std::int64_t stride, std::int64_t pad,
            std::int64_t oh, std::int64_t ow) {
  const std::int64_t spatial = oh * ow;
  std::int64_t row = 0;
  for (std::int64_t ci = 0; ci < c; ++ci)
    for (std::int64_t ky = 0; ky < kh; ++ky)
      for (std::int64_t kx = 0; kx < kw; ++kx, ++row) {
        const float* src = cols + row * spatial;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * stride - pad + ky;
          if (iy < 0 || iy >= h) continue;
          float* dst = img + (ci * h + iy) * w;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * stride - pad + kx;
            // pelta-lint: allow(R1) adjoint scatter-add, plain + in a fixed serial order
            if (ix >= 0 && ix < w) dst[ix] += src[y * ow + x];
          }
        }
      }
}

using detail::finite_cache;
using detail::fmadd;
using detail::gemm_accumulate;
using detail::gemm_accumulate_bt;

// Below this per-batch flop count the pool submit overhead beats the split.
constexpr std::int64_t k_conv_parallel_flops = 1 << 15;

}  // namespace

tensor conv2d(const tensor& input, const tensor& weight, const tensor& bias, std::int64_t stride,
              std::int64_t pad) {
  PELTA_CHECK_MSG(input.ndim() == 4 && weight.ndim() == 4,
                  "conv2d shapes " << to_string(input.shape()) << ", " << to_string(weight.shape()));
  const std::int64_t b = input.size(0), c = input.size(1), h = input.size(2), w = input.size(3);
  const std::int64_t oc = weight.size(0), kc = weight.size(1), kh = weight.size(2),
                     kw = weight.size(3);
  PELTA_CHECK_MSG(kc == c, "conv2d channel mismatch " << kc << " vs " << c);
  const bool has_bias = bias.numel() == oc && bias.ndim() == 1;
  if (bias.numel() != 0) PELTA_CHECK_MSG(has_bias, "conv2d bias shape " << to_string(bias.shape()));
  const std::int64_t oh = conv_out_dim(h, kh, stride, pad);
  const std::int64_t ow = conv_out_dim(w, kw, stride, pad);
  PELTA_CHECK_MSG(oh > 0 && ow > 0, "conv2d output collapsed");

  // im2col + GEMM: out[n] = W [OC, C*KH*KW] x cols [C*KH*KW, OH*OW].
  // Images write disjoint output slices, so splitting the batch across the
  // pool is bit-identical to the serial loop; each chunk owns a cols buffer.
  const std::int64_t krows = c * kh * kw, spatial = oh * ow;
  tensor out{shape_t{b, oc, oh, ow}};
  const float* in = input.data().data();
  const float* wt = weight.data().data();
  float* op = out.data().data();
  const auto batch_range = [&](std::int64_t lo, std::int64_t hi) {
    // Chunk-local workspace from the executing thread's arena; im2col
    // rewrites it fully per image, so no zeroing is needed.
    scratch_buffer cols = scratch_arena::local().take(static_cast<std::size_t>(krows * spatial));
    for (std::int64_t n = lo; n < hi; ++n) {
      im2col(in + n * c * h * w, cols.data(), c, h, w, kh, kw, stride, pad, oh, ow);
      float* obase = op + n * oc * spatial;
      if (has_bias)
        for (std::int64_t o = 0; o < oc; ++o)
          for (std::int64_t s = 0; s < spatial; ++s) obase[o * spatial + s] = bias[o];
      // Per image; the kernel scans cols only if the (normally dense)
      // weight matrix contains zeros.
      finite_cache cols_finite;
      gemm_accumulate(wt, cols.data(), obase, oc, krows, spatial, cols_finite);
    }
  };
  if (b >= 2 && b * oc * krows * spatial >= k_conv_parallel_flops)
    parallel_for_range(b, 0, batch_range);
  else
    batch_range(0, b);
  return out;
}

tensor conv2d_backward_input(const tensor& grad_out, const tensor& weight, std::int64_t stride,
                             std::int64_t pad, const shape_t& input_shape) {
  PELTA_CHECK(grad_out.ndim() == 4 && weight.ndim() == 4 && input_shape.size() == 4);
  const std::int64_t b = input_shape[0], c = input_shape[1], h = input_shape[2], w = input_shape[3];
  const std::int64_t oc = weight.size(0), kh = weight.size(2), kw = weight.size(3);
  const std::int64_t oh = grad_out.size(2), ow = grad_out.size(3);
  PELTA_CHECK(grad_out.size(0) == b && grad_out.size(1) == oc && weight.size(1) == c);

  // cols_grad [C*KH*KW, OH*OW] = Wᵀ [C*KH*KW, OC] x grad_out [OC, OH*OW];
  // then col2im scatters back into the image.
  const std::int64_t krows = c * kh * kw, spatial = oh * ow;
  // Transposed weight view, materialized once on the submitting thread's
  // arena. Pool chunks only READ it (the pool's submit/join orders the
  // writes before them); each chunk takes its own cols workspace from its
  // own thread's arena.
  scratch_buffer wt_t_buf =
      scratch_arena::local().take(static_cast<std::size_t>(krows * oc));
  float* wt_t = wt_t_buf.data();
  {
    const float* wt = weight.data().data();
    for (std::int64_t o = 0; o < oc; ++o)
      for (std::int64_t r = 0; r < krows; ++r) wt_t[r * oc + o] = wt[o * krows + r];
  }
  tensor grad_in{input_shape};
  const float* go = grad_out.data().data();
  float* gi = grad_in.data().data();
  // Per-image gradients are disjoint: split the batch, one cols per chunk.
  const auto batch_range = [&](std::int64_t lo, std::int64_t hi) {
    scratch_buffer cols = scratch_arena::local().take(static_cast<std::size_t>(krows * spatial));
    for (std::int64_t n = lo; n < hi; ++n) {
      // The GEMM accumulates into cols, so it needs a zero base every image
      // (arena memory is reused, not fresh).
      std::fill(cols.data(), cols.data() + krows * spatial, 0.0f);
      const float* gslice = go + n * oc * spatial;
      // Per image; the kernel scans the gradient slice only if the
      // (normally dense) transposed weight matrix contains zeros.
      finite_cache grad_finite;
      gemm_accumulate(wt_t, gslice, cols.data(), krows, oc, spatial, grad_finite);
      col2im(cols.data(), gi + n * c * h * w, c, h, w, kh, kw, stride, pad, oh, ow);
    }
  };
  if (b >= 2 && b * krows * oc * spatial >= k_conv_parallel_flops)
    parallel_for_range(b, 0, batch_range);
  else
    batch_range(0, b);
  return grad_in;
}

tensor conv2d_backward_weight(const tensor& grad_out, const tensor& input, std::int64_t stride,
                              std::int64_t pad, const shape_t& weight_shape) {
  PELTA_CHECK(grad_out.ndim() == 4 && input.ndim() == 4 && weight_shape.size() == 4);
  const std::int64_t b = input.size(0), c = input.size(1), h = input.size(2), w = input.size(3);
  const std::int64_t oc = weight_shape[0], kh = weight_shape[2], kw = weight_shape[3];
  const std::int64_t oh = grad_out.size(2), ow = grad_out.size(3);
  PELTA_CHECK(weight_shape[1] == c && grad_out.size(1) == oc);

  // grad_W [OC, C*KH*KW] += grad_out [OC, OH*OW] x colsᵀ [OH*OW, C*KH*KW].
  // cols itself is exactly the transposed-B layout ([krows, spatial] row-
  // major = [spatial, krows]ᵀ), so the bt kernel consumes it directly — the
  // old per-image cols→colsᵀ scatter-transpose is gone.
  const std::int64_t krows = c * kh * kw, spatial = oh * ow;
  scratch_buffer cols = scratch_arena::local().take(static_cast<std::size_t>(krows * spatial));
  tensor grad_w{weight_shape};
  const float* go = grad_out.data().data();
  const float* in = input.data().data();
  float* gw = grad_w.data().data();
  // Serial on purpose: every image accumulates into the same grad_w, and a
  // batch split would change the float summation order with the thread
  // count — breaking the bit-identical-across-PELTA_THREADS guarantee.
  for (std::int64_t n = 0; n < b; ++n) {
    im2col(in + n * c * h * w, cols.data(), c, h, w, kh, kw, stride, pad, oh, ow);
    // Per image (each has its own cols); scanned only if grad_out has zeros.
    finite_cache cols_finite;
    gemm_accumulate_bt(go + n * oc * spatial, cols.data(), gw, oc, spatial, krows, cols_finite);
  }
  return grad_w;
}

tensor conv2d_backward_bias(const tensor& grad_out) {
  PELTA_CHECK(grad_out.ndim() == 4);
  const std::int64_t b = grad_out.size(0), oc = grad_out.size(1),
                     spatial = grad_out.size(2) * grad_out.size(3);
  tensor grad_b{shape_t{oc}};
  const float* go = grad_out.data().data();
  // One double accumulator per channel across the WHOLE batch (R1): the old
  // shape — double per image, then `grad_b[o] += float(acc)` — re-narrowed
  // between images, so small contributions vanished between large
  // cancelling ones across the batch.
  for (std::int64_t o = 0; o < oc; ++o) {
    double acc = 0.0;
    for (std::int64_t n = 0; n < b; ++n) {
      const float* base = go + (n * oc + o) * spatial;
      for (std::int64_t s = 0; s < spatial; ++s) acc += base[s];
    }
    grad_b[o] = static_cast<float>(acc);
  }
  return grad_b;
}

tensor conv2d_transpose(const tensor& input, const tensor& weight, std::int64_t stride,
                        std::int64_t pad) {
  PELTA_CHECK_MSG(input.ndim() == 4 && weight.ndim() == 4,
                  "conv2d_transpose shapes " << to_string(input.shape()) << ", "
                                             << to_string(weight.shape()));
  const std::int64_t b = input.size(0), c = input.size(1), h = input.size(2), w = input.size(3);
  PELTA_CHECK_MSG(weight.size(0) == c, "conv2d_transpose channel mismatch");
  const std::int64_t oc = weight.size(1), kh = weight.size(2), kw = weight.size(3);
  const std::int64_t oh = (h - 1) * stride - 2 * pad + kh;
  const std::int64_t ow = (w - 1) * stride - 2 * pad + kw;
  PELTA_CHECK_MSG(oh > 0 && ow > 0, "conv2d_transpose output collapsed");

  tensor out{shape_t{b, oc, oh, ow}};
  const float* in = input.data().data();
  const float* wt = weight.data().data();
  float* op = out.data().data();
  for (std::int64_t n = 0; n < b; ++n) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      for (std::int64_t y = 0; y < h; ++y) {
        for (std::int64_t x = 0; x < w; ++x) {
          const float v = in[((n * c + ci) * h + y) * w + x];
          if (v == 0.0f) continue;
          for (std::int64_t o = 0; o < oc; ++o) {
            for (std::int64_t ky = 0; ky < kh; ++ky) {
              const std::int64_t oy = y * stride - pad + ky;
              if (oy < 0 || oy >= oh) continue;
              float* out_row = op + ((n * oc + o) * oh + oy) * ow;
              const float* wt_row = wt + ((ci * oc + o) * kh + ky) * kw;
              for (std::int64_t kx = 0; kx < kw; ++kx) {
                const std::int64_t ox = x * stride - pad + kx;
                if (ox < 0 || ox >= ow) continue;
                // detail::fmadd (R1): a raw `out += v * w` is exactly the
                // contraction hazard the kernel policy exists for — on FMA
                // targets -ffp-contract could fuse this path while the
                // reference stays mul+add.
                out_row[ox] = fmadd(v, wt_row[kx], out_row[ox]);
              }
            }
          }
        }
      }
    }
  }
  return out;
}

maxpool_result maxpool2x2(const tensor& input) {
  PELTA_CHECK(input.ndim() == 4);
  const std::int64_t b = input.size(0), c = input.size(1), h = input.size(2), w = input.size(3);
  PELTA_CHECK_MSG(h % 2 == 0 && w % 2 == 0, "maxpool2x2 needs even spatial dims, got "
                                                << to_string(input.shape()));
  const std::int64_t oh = h / 2, ow = w / 2;
  maxpool_result r{tensor{shape_t{b, c, oh, ow}}, tensor{shape_t{b, c, oh, ow}}};
  const float* in = input.data().data();
  float* op = r.output.data().data();
  float* ix = r.indices.data().data();
  for (std::int64_t n = 0; n < b; ++n)
    for (std::int64_t ci = 0; ci < c; ++ci)
      for (std::int64_t y = 0; y < oh; ++y)
        for (std::int64_t x = 0; x < ow; ++x) {
          float best = -1e30f;
          std::int64_t best_idx = 0;
          for (std::int64_t dy = 0; dy < 2; ++dy)
            for (std::int64_t dx = 0; dx < 2; ++dx) {
              const std::int64_t idx = ((n * c + ci) * h + (2 * y + dy)) * w + (2 * x + dx);
              if (in[idx] > best) {
                best = in[idx];
                best_idx = idx;
              }
            }
          const std::int64_t oidx = ((n * c + ci) * oh + y) * ow + x;
          op[oidx] = best;
          ix[oidx] = static_cast<float>(best_idx);
        }
  return r;
}

tensor maxpool2x2_backward(const tensor& grad_out, const tensor& indices,
                           const shape_t& input_shape) {
  PELTA_CHECK(grad_out.same_shape(indices));
  tensor grad_in{input_shape};
  auto go = grad_out.data();
  auto ix = indices.data();
  auto gi = grad_in.data();
  for (std::size_t i = 0; i < go.size(); ++i)
    // pelta-lint: allow(R1) argmax scatter-add, plain + in a fixed serial order
    gi[static_cast<std::size_t>(ix[i])] += go[i];
  return grad_in;
}

tensor global_avgpool(const tensor& input) {
  PELTA_CHECK(input.ndim() == 4);
  const std::int64_t b = input.size(0), c = input.size(1),
                     spatial = input.size(2) * input.size(3);
  tensor out{shape_t{b, c}};
  const float* in = input.data().data();
  for (std::int64_t n = 0; n < b; ++n)
    for (std::int64_t ci = 0; ci < c; ++ci) {
      double acc = 0.0;
      const float* base = in + (n * c + ci) * spatial;
      for (std::int64_t s = 0; s < spatial; ++s) acc += base[s];
      out.at(n, ci) = static_cast<float>(acc / static_cast<double>(spatial));
    }
  return out;
}

tensor global_avgpool_backward(const tensor& grad_out, const shape_t& input_shape) {
  PELTA_CHECK(grad_out.ndim() == 2 && input_shape.size() == 4);
  const std::int64_t b = input_shape[0], c = input_shape[1],
                     spatial = input_shape[2] * input_shape[3];
  PELTA_CHECK(grad_out.size(0) == b && grad_out.size(1) == c);
  tensor grad_in{input_shape};
  float* gi = grad_in.data().data();
  const float inv = 1.0f / static_cast<float>(spatial);
  for (std::int64_t n = 0; n < b; ++n)
    for (std::int64_t ci = 0; ci < c; ++ci) {
      const float g = grad_out.at(n, ci) * inv;
      float* base = gi + (n * c + ci) * spatial;
      for (std::int64_t s = 0; s < spatial; ++s) base[s] = g;
    }
  return grad_in;
}

tensor upsample_bilinear(const tensor& input, std::int64_t factor) {
  PELTA_CHECK_MSG(factor >= 1, "upsample factor must be >= 1");
  const bool batched = input.ndim() == 4;
  PELTA_CHECK_MSG(batched || input.ndim() == 3,
                  "upsample_bilinear expects [C,H,W] or [B,C,H,W]");
  const std::int64_t b = batched ? input.size(0) : 1;
  const std::int64_t c = input.size(batched ? 1 : 0);
  const std::int64_t h = input.size(batched ? 2 : 1);
  const std::int64_t w = input.size(batched ? 3 : 2);
  const std::int64_t oh = h * factor, ow = w * factor;
  shape_t out_shape = batched ? shape_t{b, c, oh, ow} : shape_t{c, oh, ow};
  tensor out{out_shape};
  const float* in = input.data().data();
  float* op = out.data().data();
  for (std::int64_t n = 0; n < b; ++n)
    for (std::int64_t ci = 0; ci < c; ++ci) {
      const float* src = in + (n * c + ci) * h * w;
      float* dst = op + (n * c + ci) * oh * ow;
      for (std::int64_t y = 0; y < oh; ++y) {
        // map output pixel centre back into source coordinates
        const float sy = (static_cast<float>(y) + 0.5f) / static_cast<float>(factor) - 0.5f;
        const std::int64_t y0 = std::clamp<std::int64_t>(static_cast<std::int64_t>(std::floor(sy)), 0, h - 1);
        const std::int64_t y1 = std::min<std::int64_t>(y0 + 1, h - 1);
        const float fy = std::clamp(sy - static_cast<float>(y0), 0.0f, 1.0f);
        for (std::int64_t x = 0; x < ow; ++x) {
          const float sx = (static_cast<float>(x) + 0.5f) / static_cast<float>(factor) - 0.5f;
          const std::int64_t x0 = std::clamp<std::int64_t>(static_cast<std::int64_t>(std::floor(sx)), 0, w - 1);
          const std::int64_t x1 = std::min<std::int64_t>(x0 + 1, w - 1);
          const float fx = std::clamp(sx - static_cast<float>(x0), 0.0f, 1.0f);
          const float v00 = src[y0 * w + x0], v01 = src[y0 * w + x1];
          const float v10 = src[y1 * w + x0], v11 = src[y1 * w + x1];
          dst[y * ow + x] = (1 - fy) * ((1 - fx) * v00 + fx * v01) + fy * ((1 - fx) * v10 + fx * v11);
        }
      }
    }
  return out;
}

}  // namespace pelta::ops
