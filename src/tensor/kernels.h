// Shared dense inner kernels for the tensor backends (ops.cpp, conv.cpp).
// Internal implementation surface — not part of the public API. detail::fmadd
// doubles as the repo-wide float-accumulation policy (pelta-lint rule R1):
// fl/aggregation routes its weighted accumulations through it too, so no
// layer's rounding sequence can drift with -ffp-contract.
//
// Determinism contract (see README "Tensor backend"): for every output
// element the k-accumulation order is ascending and expressed by the same
// source-level `acc += a * b` sequence on every code path (full register
// tiles, row tails, column tails). A row's bits therefore never depend on
// which tile or parallel chunk it landed in, which is what lets matmul and
// the conv batch loops split work across PELTA_THREADS without changing a
// single bit of the result.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>

namespace pelta::ops::detail {

/// Register-tile extents of the blocked GEMM in kernels.cpp. Callers that
/// split rows across threads should round their chunk grain up to
/// k_gemm_mr so mid-matrix chunks keep full row tiles (values are
/// grain-independent either way; this is purely a throughput concern).
inline constexpr std::int64_t k_gemm_mr = 4;   // rows per register tile
inline constexpr std::int64_t k_gemm_nr = 16;  // columns per register tile

/// Single-rounding fused multiply-add where the ISA has it, separate
/// mul+add where it does not — fixed at compile time. Every kernel path
/// (full tiles, tails, packed edges) and the frozen reference kernels in
/// tests/bench accumulate through this helper, so each output element sees
/// the identical rounding sequence no matter which instantiation computed
/// it. Without this, -ffp-contract is free to fuse some paths and not
/// others, silently breaking bit-identity between tile shapes (and with it
/// the across-PELTA_THREADS guarantee) on FMA targets.
inline float fmadd(float a, float b, float c) {
#if defined(__FMA__) || defined(__ARM_FEATURE_FMA)
  return std::fma(a, b, c);
#else
  return a * b + c;  // no FMA on this target: contraction cannot diverge
#endif
}

inline bool all_finite(const float* p, std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i)
    if (!std::isfinite(p[i])) return false;
  return true;
}

/// Lazily computed finiteness of one B operand: -1 unknown, 0 has
/// non-finite values, 1 all finite. Chunks of one parallel split share the
/// cache so B is scanned at most once per operand (the duplicated-scan race
/// is benign — both writers store the same value). Lock discipline
/// (docs/ARCHITECTURE.md): a value-idempotent atomic like this carries no
/// PELTA_GUARDED_BY — there is no mutex, and every racing writer computes
/// the identical value from the same immutable operand.
class finite_cache {
public:
  bool check(const float* b, std::int64_t count) {
    int s = state_.load(std::memory_order_relaxed);
    if (s < 0) {
      s = all_finite(b, count) ? 1 : 0;
      state_.store(s, std::memory_order_relaxed);
    }
    return s == 1;
  }

private:
  std::atomic<int> state_{-1};
};

// Blocked GEMM: out[m,n] += a[m,k] * b[k,n]; out must hold the accumulation
// base (zeros or bias). Per output element the k-order matches the classic
// i-k-j loop bit for bit. The zero-skip fast path is only sound when B is
// fully finite: 0 * Inf and 0 * NaN are NaN, and a poisoned update must
// surface, not vanish through a zero-weight row — the gate is decided ONCE
// per call, never inside the inner loops: A is pre-scanned for zeros
// (dense A neither consults nor scans B, as before), and only a zero-
// bearing A pays the B scan, cached in `b_finite` across calls on the same
// operand.
void gemm_accumulate(const float* a, const float* b, float* out, std::int64_t m, std::int64_t k,
                     std::int64_t n, finite_cache& b_finite);

// Transposed-B variant: out[m,n] += a[m,k] * bt[n,k]ᵀ, i.e. B is stored
// row-major as [n,k] and B[kk][j] = bt[j*k + kk]. Bit-identical to
// materializing the [k,n] transpose and calling gemm_accumulate — same
// ascending k-order per element, same zero-skip gate (decided from bt's
// finiteness) — but instead of a full [k,n] transpose per call it repacks
// one L1-resident (KC x 16) panel at a time from the thread's scratch
// arena, so conv2d_backward_weight no longer materializes cols_t.
void gemm_accumulate_bt(const float* a, const float* bt, float* out, std::int64_t m,
                        std::int64_t k, std::int64_t n, finite_cache& bt_finite);

}  // namespace pelta::ops::detail
