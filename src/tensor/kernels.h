// Shared dense inner kernels for the tensor backends (ops.cpp, conv.cpp).
// Internal implementation surface — not part of the public API. detail::fmadd
// doubles as the repo-wide float-accumulation policy (pelta-lint rule R1):
// fl/aggregation routes its weighted accumulations through it too, so no
// layer's rounding sequence can drift with -ffp-contract.
//
// Determinism contract (see README "Tensor backend"): for every output
// element the k-accumulation order is ascending and expressed by the same
// source-level `acc += a * b` sequence on every code path (full register
// tiles, row tails, column tails). A row's bits therefore never depend on
// which tile or parallel chunk it landed in, which is what lets matmul and
// the conv batch loops split work across PELTA_THREADS without changing a
// single bit of the result.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>

namespace pelta::ops::detail {

/// Register-tile extents of the blocked GEMM in kernels.cpp. Callers that
/// split rows across threads should round their chunk grain up to
/// k_gemm_mr so mid-matrix chunks keep full row tiles (values are
/// grain-independent either way; this is purely a throughput concern).
inline constexpr std::int64_t k_gemm_mr = 4;   // rows per register tile
inline constexpr std::int64_t k_gemm_nr = 16;  // columns per register tile

/// Single-rounding fused multiply-add where the ISA has it, separate
/// mul+add where it does not — fixed at compile time. Every kernel path
/// (full tiles, tails, packed edges) and the frozen reference kernels in
/// tests/bench accumulate through this helper, so each output element sees
/// the identical rounding sequence no matter which instantiation computed
/// it. Without this, -ffp-contract is free to fuse some paths and not
/// others, silently breaking bit-identity between tile shapes (and with it
/// the across-PELTA_THREADS guarantee) on FMA targets.
inline float fmadd(float a, float b, float c) {
#if defined(__FMA__) || defined(__ARM_FEATURE_FMA)
  return std::fma(a, b, c);
#else
  return a * b + c;  // no FMA on this target: contraction cannot diverge
#endif
}

inline bool all_finite(const float* p, std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i)
    if (!std::isfinite(p[i])) return false;
  return true;
}

/// Lazily computed finiteness of one B operand: -1 unknown, 0 has
/// non-finite values, 1 all finite. Chunks of one parallel split share the
/// cache so B is scanned at most once per operand (the duplicated-scan race
/// is benign — both writers store the same value). Lock discipline
/// (docs/ARCHITECTURE.md): a value-idempotent atomic like this carries no
/// PELTA_GUARDED_BY — there is no mutex, and every racing writer computes
/// the identical value from the same immutable operand.
class finite_cache {
public:
  bool check(const float* b, std::int64_t count) {
    int s = state_.load(std::memory_order_relaxed);
    if (s < 0) {
      s = all_finite(b, count) ? 1 : 0;
      state_.store(s, std::memory_order_relaxed);
    }
    return s == 1;
  }

private:
  std::atomic<int> state_{-1};
};

// Blocked GEMM: out[m,n] += a[m,k] * b[k,n]; out must hold the accumulation
// base (zeros or bias). Per output element the k-order matches the classic
// i-k-j loop bit for bit. The zero-skip fast path is only sound when B is
// fully finite: 0 * Inf and 0 * NaN are NaN, and a poisoned update must
// surface, not vanish through a zero-weight row — the gate is decided ONCE
// per call, never inside the inner loops: A is pre-scanned for zeros
// (dense A neither consults nor scans B, as before), and only a zero-
// bearing A pays the B scan, cached in `b_finite` across calls on the same
// operand.
void gemm_accumulate(const float* a, const float* b, float* out, std::int64_t m, std::int64_t k,
                     std::int64_t n, finite_cache& b_finite);

// Transposed-B variant: out[m,n] += a[m,k] * bt[n,k]ᵀ, i.e. B is stored
// row-major as [n,k] and B[kk][j] = bt[j*k + kk]. Bit-identical to
// materializing the [k,n] transpose and calling gemm_accumulate — same
// ascending k-order per element, same zero-skip gate (decided from bt's
// finiteness) — but instead of a full [k,n] transpose per call it repacks
// one L1-resident (KC x 16) panel at a time from the thread's scratch
// arena, so conv2d_backward_weight no longer materializes cols_t.
void gemm_accumulate_bt(const float* a, const float* bt, float* out, std::int64_t m,
                        std::int64_t k, std::int64_t n, finite_cache& bt_finite);

// ---- int8 quantized GEMM ----------------------------------------------------
//
// Operand encoding (see tensor/quantized_tensor.h for the quantization
// helpers that produce it):
//   * A holds activations as SHIFTED unsigned bytes: stored value
//     a_u8 = q_a + 128 with q_a in [-127, 127], so a_u8 in [1, 255].
//   * B holds per-output-channel 7-bit weights: q_w in [-63, 63] as plain
//     int8. The 7-bit clamp is what makes the AVX2 vpmaddubsw path exact:
//     a u8*s8 product pair is bounded by 2 * 255 * 63 = 32130 < 2^15 - 1,
//     so the instruction's saturating s16 pair-sum can never saturate.
//   * The kernel computes out[i][j] = sum_k (a_u8 - 128) * q_w as int32 by
//     accumulating the raw sum_k a_u8 * q_w and pre-loading the output with
//     the -128 * colsum[j] compensation term (colsum[j] = sum_k q_w[kk][j]).
//     Integer accumulation is exact and associative, so every path (AVX2,
//     scalar fallback, any row split across PELTA_THREADS) produces
//     bit-identical int32 results by construction.

/// Bytes per k-group: vpmaddubsw consumes 4 consecutive k bytes per lane.
inline constexpr std::int64_t k_qgemm_kg = 4;
/// Packed panel width (columns per panel), matching the fp32 tile width.
inline constexpr std::int64_t k_qgemm_nr = 16;

/// Number of 4-wide k-groups covering k (k zero-padded up to a multiple of 4).
inline std::int64_t qgemm_k_groups(std::int64_t k) {
  return (k + k_qgemm_kg - 1) / k_qgemm_kg;
}

/// Required row stride (in bytes) of an A panel for depth k. Bytes in
/// [k, stride) of each row are don't-care: they only ever multiply the
/// packed B pad entries, which are zero.
inline std::int64_t qgemm_row_stride(std::int64_t k) {
  return qgemm_k_groups(k) * k_qgemm_kg;
}

/// Packed-B size in int8 elements for a [k, n] weight matrix: panels of 16
/// columns x qgemm_k_groups(k) groups x 64 bytes, n padded up to 16.
inline std::int64_t qgemm_packed_size(std::int64_t k, std::int64_t n) {
  return (n + k_qgemm_nr - 1) / k_qgemm_nr * qgemm_k_groups(k) * k_qgemm_nr * k_qgemm_kg;
}

/// Pack row-major int8 B [k, n] into the kernel layout
/// [n_pad/16][k_groups][16 columns][4 k-bytes]; pad columns (n -> n_pad)
/// and pad k-bytes (k -> 4*k_groups) are zero-filled, which is what makes
/// A's pad bytes don't-care and keeps the edge panels fixed-trip.
void qgemm_pack_b(const std::int8_t* b, std::int64_t k, std::int64_t n, std::int8_t* packed);

/// out[m,n] (int32, row stride n, OVERWRITTEN) = (a - 128) * b using packed
/// B and its column sums. a: shifted-u8 rows with row stride lda >=
/// qgemm_row_stride(k). Callers may split m across threads at any grain —
/// rows are independent and integer-exact, so the split is bitwise
/// invisible (round the grain to k_gemm_mr for full row tiles, as fp32).
void qgemm(const std::uint8_t* a, std::int64_t lda, const std::int8_t* packed,
           const std::int32_t* colsum, std::int32_t* out, std::int64_t m, std::int64_t k,
           std::int64_t n);

}  // namespace pelta::ops::detail
