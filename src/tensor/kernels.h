// Shared dense inner kernels for the tensor backends (ops.cpp, conv.cpp).
// Internal to src/tensor — not part of the public surface.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>

namespace pelta::ops::detail {

inline bool all_finite(const float* p, std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i)
    if (!std::isfinite(p[i])) return false;
  return true;
}

/// Lazily computed finiteness of one B operand: -1 unknown, 0 has
/// non-finite values, 1 all finite. Dense A operands never trigger the
/// scan; chunks of one parallel split share the cache so B is scanned at
/// most once per operand (the duplicated-scan race is benign — both
/// writers store the same value).
class finite_cache {
public:
  bool check(const float* b, std::int64_t count) {
    int s = state_.load(std::memory_order_relaxed);
    if (s < 0) {
      s = all_finite(b, count) ? 1 : 0;
      state_.store(s, std::memory_order_relaxed);
    }
    return s == 1;
  }

private:
  std::atomic<int> state_{-1};
};

// Cache-friendly i-k-j matmul: out[m,n] += a[m,k] * b[k,n]; out must hold
// the accumulation base (zeros or bias). The zero-skip fast path is only
// sound when B is fully finite: 0 * Inf and 0 * NaN are NaN, and a poisoned
// update must surface, not vanish through a zero-weight row — hence the
// lazy finiteness gate, consulted only when a zero actually appears in A.
inline void gemm_accumulate(const float* a, const float* b, float* out, std::int64_t m,
                            std::int64_t k, std::int64_t n, finite_cache& b_finite) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* orow = out + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f && b_finite.check(b, k * n)) continue;
      const float* brow = b + kk * n;
      for (std::int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

}  // namespace pelta::ops::detail
