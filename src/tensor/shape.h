// Tensor shape type and row-major index arithmetic.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <ostream>
#include <string>
#include <vector>

#include "tensor/check.h"

namespace pelta {

/// Row-major tensor shape. Empty shape denotes a scalar (numel == 1).
using shape_t = std::vector<std::int64_t>;

/// Number of elements described by a shape (product of extents).
inline std::int64_t numel_of(const shape_t& s) {
  std::int64_t n = 1;
  for (std::int64_t d : s) {
    PELTA_CHECK_MSG(d >= 0, "negative extent " << d);
    n *= d;
  }
  return n;
}

/// Human-readable shape, e.g. "[2, 3, 4]".
inline std::string to_string(const shape_t& s) {
  std::string out = "[";
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(s[i]);
  }
  out += "]";
  return out;
}

inline std::ostream& operator<<(std::ostream& os, const shape_t& s) {
  return os << to_string(s);
}

/// Row-major strides for a shape (innermost dimension has stride 1).
inline shape_t strides_of(const shape_t& s) {
  shape_t st(s.size(), 1);
  for (int i = static_cast<int>(s.size()) - 2; i >= 0; --i)
    st[i] = st[i + 1] * s[i + 1];
  return st;
}

}  // namespace pelta
