// Convolution and pooling kernels over NCHW tensors.
//
// Direct (non-im2col) loops — the simulated models are small, and direct
// kernels keep the backward passes easy to audit against finite differences.
#pragma once

#include "tensor/tensor.h"

namespace pelta::ops {

/// Forward 2-d convolution.
///   input  [B, C, H, W], weight [OC, C, KH, KW], bias [OC] (may be empty
///   tensor with numel 0-interpreted as shape [0]).
/// Zero padding `pad` on every side, square stride `stride`.
tensor conv2d(const tensor& input, const tensor& weight, const tensor& bias, std::int64_t stride,
              std::int64_t pad);

/// Gradients of conv2d. Returns d_input; writes d_weight/d_bias if non-null.
tensor conv2d_backward_input(const tensor& grad_out, const tensor& weight, std::int64_t stride,
                             std::int64_t pad, const shape_t& input_shape);
tensor conv2d_backward_weight(const tensor& grad_out, const tensor& input, std::int64_t stride,
                              std::int64_t pad, const shape_t& weight_shape);
tensor conv2d_backward_bias(const tensor& grad_out);

/// Transposed convolution ("deconvolution", Dumoulin & Visin): the geometric
/// upsampling used by the PELTA attacker to lift the clear-layer adjoint
/// back to input shape (§V-B). input [B, C, H, W], weight [C, OC, KH, KW].
/// Output spatial size: (H-1)*stride - 2*pad + KH.
tensor conv2d_transpose(const tensor& input, const tensor& weight, std::int64_t stride,
                        std::int64_t pad);

/// 2x2 max pooling with stride 2; also returns flat argmax indices for the
/// backward pass (same shape as the output).
struct maxpool_result {
  tensor output;
  tensor indices;  // flat index into the input window source, as float
};
maxpool_result maxpool2x2(const tensor& input);
tensor maxpool2x2_backward(const tensor& grad_out, const tensor& indices,
                           const shape_t& input_shape);

/// Global average pooling: [B, C, H, W] -> [B, C].
tensor global_avgpool(const tensor& input);
tensor global_avgpool_backward(const tensor& grad_out, const shape_t& input_shape);

/// Nearest-neighbour / bilinear upsampling of [C, H, W] or [B, C, H, W] by an
/// integer factor (used by the synthetic dataset generator).
tensor upsample_bilinear(const tensor& input, std::int64_t factor);

}  // namespace pelta::ops
