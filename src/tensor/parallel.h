// Minimal deterministic parallel-for used by the attack evaluation harness.
//
// Work items are indexed; each item derives its own rng stream from the
// experiment seed, so results are identical regardless of thread count.
#pragma once

#include <cstdint>
#include <functional>

namespace pelta {

/// Number of worker threads used by parallel_for. Defaults to the hardware
/// concurrency, overridable via the PELTA_THREADS environment variable.
int parallel_thread_count();

/// Run body(i) for i in [0, n) across the pool. Exceptions thrown by any
/// body are captured and rethrown (first one wins) after all workers join.
void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& body);

}  // namespace pelta
