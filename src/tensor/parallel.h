// Persistent work-queue thread pool behind the library's data parallelism.
//
// A lazy singleton pool (parallel_thread_count() - 1 workers; the submitting
// thread always participates) executes chunked index ranges. Work items are
// indexed; each item derives its own rng stream from the experiment seed and
// writes only its own output slots, so results are bit-identical regardless
// of thread count or chunk partitioning.
//
// Guarantees:
//   * Nesting-safe: a parallel_for issued from inside a pool chunk runs
//     inline on the calling thread instead of deadlocking the pool. Inner
//     loops (matmul rows, conv images) therefore cost nothing extra when an
//     outer loop (FL clients, attack candidates) already owns the workers.
//   * Cancellation: the first body that throws cancels the sweep — no new
//     chunks are claimed, sibling per-index loops stop at the next index —
//     and the exception is rethrown on the submitting thread after every
//     in-flight chunk has retired.
//   * PELTA_THREADS=k caps the pool (k=1 never spawns a thread).
#pragma once

#include <cstdint>
#include <functional>

namespace pelta {

/// Number of threads parallel loops may use (pool workers + the submitter).
/// Defaults to the hardware concurrency, overridable via the PELTA_THREADS
/// environment variable (read once, at first use).
int parallel_thread_count();

/// True while the calling thread is executing a pool chunk. Loops submitted
/// from such a context run inline.
bool in_parallel_region();

/// True once a sibling chunk of the innermost enclosing parallel loop has
/// thrown. Long-running bodies may poll this to exit early; the per-index
/// parallel_for overloads check it between indices automatically.
bool parallel_cancelled();

/// Run body(lo, hi) over disjoint subranges covering [0, n) in chunks of
/// `grain` indices (the last chunk may be short). grain <= 0 picks an
/// automatic grain of ~8 chunks per available thread. The body must not
/// depend on the chunk partitioning (it varies with thread count); in
/// return, results are bit-identical for every PELTA_THREADS value.
/// Exceptions thrown by any chunk cancel the sweep and are rethrown
/// (first one wins) after all in-flight chunks retire.
void parallel_for_range(std::int64_t n, std::int64_t grain,
                        const std::function<void(std::int64_t, std::int64_t)>& body);

/// Per-index form of parallel_for_range: body(i) for i in [0, n), grouped
/// into grain-sized claims. Checks parallel_cancelled() between indices and
/// aborts by throwing, so a sweep ends promptly after the first failure and
/// never completes silently partial (the first real error wins the rethrow).
void parallel_for(std::int64_t n, std::int64_t grain,
                  const std::function<void(std::int64_t)>& body);

/// Per-index form with automatic grain (grain 1 whenever n is within ~8x
/// the thread count — heavy, unevenly sized items load-balance per item).
void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& body);

/// RAII: forces every parallel loop submitted by this thread (and, via
/// inline nesting, everything below it) to run serially on this thread.
/// The serial schedule is the reference the determinism suite compares the
/// pooled schedule against.
class serial_guard {
public:
  serial_guard();
  ~serial_guard();
  serial_guard(const serial_guard&) = delete;
  serial_guard& operator=(const serial_guard&) = delete;
};

/// RAII: caps the number of threads (pool workers + submitter) any parallel
/// loop submitted by this thread may use, without resizing the pool. The
/// scaling bench sweeps 1/2/4/8 this way inside one process.
class concurrency_guard {
public:
  explicit concurrency_guard(int max_threads);
  ~concurrency_guard();
  concurrency_guard(const concurrency_guard&) = delete;
  concurrency_guard& operator=(const concurrency_guard&) = delete;

private:
  int previous_;
};

}  // namespace pelta
