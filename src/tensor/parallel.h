// Persistent work-queue thread pool behind the library's data parallelism.
//
// A lazy singleton pool (parallel_thread_count() - 1 workers; the submitting
// thread always participates) executes chunked index ranges. Work items are
// indexed; each item derives its own rng stream from the experiment seed and
// writes only its own output slots, so results are bit-identical regardless
// of thread count or chunk partitioning.
//
// Guarantees:
//   * Nesting-safe: a parallel_for issued from inside a pool chunk runs
//     inline on the calling thread instead of deadlocking the pool. Inner
//     loops (matmul rows, conv images) therefore cost nothing extra when an
//     outer loop (FL clients, attack candidates) already owns the workers.
//   * Cancellation: the first body that throws cancels the sweep — no new
//     chunks are claimed, sibling per-index loops stop at the next index —
//     and the exception is rethrown on the submitting thread after every
//     in-flight chunk has retired.
//   * PELTA_THREADS=k caps the pool (k=1 never spawns a thread).
//   * Besides fork-join loops, the same workers run independent one-shot
//     tasks (submit_task / task_future) — the asynchrony primitive the
//     serving runtime's pipelined executor overlaps its stages with.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

namespace pelta {

namespace detail {
struct task_state;
}  // namespace detail

/// Number of threads parallel loops may use (pool workers + the submitter).
/// Defaults to the hardware concurrency, overridable via the PELTA_THREADS
/// environment variable (read once, at first use).
int parallel_thread_count();

/// True while the calling thread is executing a pool chunk. Loops submitted
/// from such a context run inline.
bool in_parallel_region();

/// True once a sibling chunk of the innermost enclosing parallel loop has
/// thrown. Long-running bodies may poll this to exit early; the per-index
/// parallel_for overloads check it between indices automatically.
bool parallel_cancelled();

/// Run body(lo, hi) over disjoint subranges covering [0, n) in chunks of
/// `grain` indices (the last chunk may be short). grain <= 0 picks an
/// automatic grain of ~8 chunks per available thread. The body must not
/// depend on the chunk partitioning (it varies with thread count); in
/// return, results are bit-identical for every PELTA_THREADS value.
/// Exceptions thrown by any chunk cancel the sweep and are rethrown
/// (first one wins) after all in-flight chunks retire.
void parallel_for_range(std::int64_t n, std::int64_t grain,
                        const std::function<void(std::int64_t, std::int64_t)>& body);

/// Per-index form of parallel_for_range: body(i) for i in [0, n), grouped
/// into grain-sized claims. Checks parallel_cancelled() between indices and
/// aborts by throwing, so a sweep ends promptly after the first failure and
/// never completes silently partial (the first real error wins the rethrow).
void parallel_for(std::int64_t n, std::int64_t grain,
                  const std::function<void(std::int64_t)>& body);

/// Per-index form with automatic grain (grain 1 whenever n is within ~8x
/// the thread count — heavy, unevenly sized items load-balance per item).
void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& body);

/// Handle to one task submitted with submit_task(). Default-constructed
/// futures are empty; get() is one-shot (the future is empty afterwards).
/// Abandoning a future without get() is safe — the shared state owns the
/// body — but the body's side effects then race nothing ordering-wise, so
/// pipelines must get() every future before reading what it wrote.
class task_future {
public:
  task_future() = default;

  bool valid() const { return state_ != nullptr; }

  /// Block until the task has run, then rethrow its exception (if any).
  /// If the task is still queued, the calling thread claims and runs it
  /// inline instead of waiting — waiting can never deadlock the pool.
  void get();

private:
  friend task_future submit_task(std::function<void()> body);
  explicit task_future(std::shared_ptr<detail::task_state> state);
  std::shared_ptr<detail::task_state> state_;
};

/// Submit one independent task to the pool and return immediately. The
/// composition rules match parallel_for's inline nesting: under a
/// serial_guard, a concurrency_guard(1) cap, PELTA_THREADS=1, or when
/// submitted from inside a pool chunk or another task, the body runs
/// inline *at submission* (the returned future is already complete).
/// Task bodies count as parallel regions: parallel loops they issue run
/// inline, so a task costs one thread, deterministically — the building
/// block the serving pipeline overlaps its gather/scatter stages with.
/// Unlike parallel_for sweeps, tasks are independent: one task's throw
/// cancels nothing else and surfaces only through its own future's get().
task_future submit_task(std::function<void()> body);

/// RAII: forces every parallel loop submitted by this thread (and, via
/// inline nesting, everything below it) to run serially on this thread.
/// The serial schedule is the reference the determinism suite compares the
/// pooled schedule against.
class serial_guard {
public:
  serial_guard();
  ~serial_guard();
  serial_guard(const serial_guard&) = delete;
  serial_guard& operator=(const serial_guard&) = delete;
};

/// RAII: caps the number of threads (pool workers + submitter) any parallel
/// loop submitted by this thread may use, without resizing the pool. The
/// scaling bench sweeps 1/2/4/8 this way inside one process.
class concurrency_guard {
public:
  explicit concurrency_guard(int max_threads);
  ~concurrency_guard();
  concurrency_guard(const concurrency_guard&) = delete;
  concurrency_guard& operator=(const concurrency_guard&) = delete;

private:
  int previous_;
};

}  // namespace pelta
