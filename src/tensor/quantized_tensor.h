// Post-training int8 quantization vocabulary for the inference path.
//
// Scheme (docs/ARCHITECTURE.md "Quantized inference"):
//   * Activations: per-TENSOR symmetric. scale s_x = amax / 127 (amax
//     observed over a held-out calibration shard), code q = rne(x / s_x)
//     clamped to [-127, 127], STORED shifted-unsigned as q + 128 so the
//     GEMM kernel's u8*s8 multiply applies (tensor/kernels.h).
//   * Weights: per-OUTPUT-CHANNEL symmetric, 7-bit. For a GEMM-B matrix
//     [k, n] column j is one output channel: s_w[j] = max_k |w| / 63,
//     q = rne(w / s_w[j]) clamped to [-63, 63]. The 7-bit range is a
//     kernel contract, not a whim: it bounds the u8*s8 pair sums below
//     int16 saturation on the AVX2 path.
//   * Accumulation: int32, exact (the R1 float-accumulation rule exempts
//     integer `+=` — there is no rounding sequence to pin down).
//   * Dequantization: y = fmadd(float(acc), s_x * s_w[j], bias[j]) through
//     detail::fmadd, the house fp32 accumulation policy, so the float side
//     of the quantized path rounds exactly once per element like every
//     other kernel.
//
// Rounding is explicit round-to-nearest-even (not std::nearbyint, whose
// result hangs off the ambient FP environment): quantized codes must be a
// pure function of the fp32 inputs for the bitwise determinism contract.
#pragma once

#include <cstdint>
#include <vector>

namespace pelta::quant {

/// Shift added to activation codes for unsigned storage.
inline constexpr std::int32_t k_act_zero = 128;
/// Activation code magnitude bound: q in [-127, 127], stored [1, 255].
inline constexpr std::int32_t k_act_qmax = 127;
/// Weight code magnitude bound (7-bit; see header comment).
inline constexpr std::int32_t k_weight_qmax = 63;

/// Round to nearest, ties to even — independent of the FP environment.
std::int32_t round_nearest_even(float x);

/// Largest |x| over `count` floats (0 for an empty range).
float absmax(const float* x, std::int64_t count);

/// Per-tensor activation scale from an observed absolute maximum.
/// A degenerate range (amax <= 0, e.g. an all-zero calibration response)
/// falls back to scale 1: every value quantizes to the zero code.
float activation_scale(float amax);

/// Quantize `count` activations to shifted-u8 codes at `scale`:
/// out[i] = clamp(rne(x[i] * (1/scale)), -127, 127) + 128. The reciprocal
/// is computed once per call — one rounding choice, applied uniformly, so
/// codes are a deterministic function of (x, scale) alone.
void quantize_activations(const float* x, std::int64_t count, float scale, std::uint8_t* out);

/// Dequantized value of one shifted-u8 activation code.
float dequantize_activation(std::uint8_t code, float scale);

/// Per-output-channel quantized weights of one GEMM-B matrix [k, n],
/// pre-packed for ops::detail::qgemm.
struct quantized_weights {
  std::int64_t k = 0;
  std::int64_t n = 0;
  std::vector<std::int8_t> codes;     ///< unpacked [k, n] codes (reference + backward)
  std::vector<std::int8_t> packed;    ///< qgemm panel layout (kernels.h)
  std::vector<std::int32_t> colsums;  ///< [n] sum_k q_w[kk][j] (u8-shift compensation)
  std::vector<float> scales;          ///< [n] per-channel s_w
};

/// Quantize fp32 B [k, n] row-major (column j = output channel j):
/// per-channel 7-bit symmetric scales, packed + column-summed for qgemm.
/// An all-zero channel gets scale 1 (all-zero codes).
quantized_weights quantize_weights_kn(const float* w, std::int64_t k, std::int64_t n);

/// Dequantize an int32 GEMM result [m, n] (row stride n):
///   out[i][j] = fmadd(float(acc[i][j]), act_scale * w_scales[j], bias[j])
/// with bias == nullptr reading as zeros, then out = max(out, 0) when
/// `fuse_relu` — the epilogue of every fused quantized layer. Combined
/// per-column scales are staged in the thread's scratch arena.
void dequantize_rows(const std::int32_t* acc, std::int64_t m, std::int64_t n, float act_scale,
                     const float* w_scales, const float* bias, bool fuse_relu, float* out);

}  // namespace pelta::quant
