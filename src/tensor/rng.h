// Deterministic random number generation.
//
// All randomness in the library flows through pelta::rng so that every
// experiment is reproducible from a single printed seed. Child generators
// (rng::fork) derive independent deterministic streams, which keeps
// per-sample work order-independent under the thread pool.
#pragma once

#include <cstdint>
#include <random>

namespace pelta {

/// Seedable random generator wrapping a 64-bit Mersenne twister.
class rng {
public:
  explicit rng(std::uint64_t seed = 0x5e17a0u) : engine_{seed}, seed_{seed} {}

  /// The seed this generator was constructed with.
  std::uint64_t seed() const { return seed_; }

  /// Uniform float in [lo, hi).
  float uniform(float lo = 0.0f, float hi = 1.0f) {
    std::uniform_real_distribution<float> d{lo, hi};
    return d(engine_);
  }

  /// Normal float with the given mean and standard deviation.
  float normal(float mean = 0.0f, float stddev = 1.0f) {
    std::normal_distribution<float> d{mean, stddev};
    return d(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d{lo, hi};
    return d(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) {
    std::bernoulli_distribution d{p};
    return d(engine_);
  }

  /// Raw 64-bit draw (used to derive child seeds).
  std::uint64_t next_u64() { return engine_(); }

  /// Deterministic child generator for stream `index`; independent streams
  /// for different indices, stable regardless of draw order on the parent.
  rng fork(std::uint64_t index) const {
    // splitmix64 of (seed, index) — avoids correlated mt19937 states.
    std::uint64_t z = seed_ + 0x9e3779b97f4a7c15ull * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z = z ^ (z >> 31);
    return rng{z};
  }

  std::mt19937_64& engine() { return engine_; }

private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace pelta
