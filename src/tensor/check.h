// Lightweight contract checking for the PELTA library.
//
// All public-API misuse and internal invariant violations raise
// pelta::error (derived from std::runtime_error) with a readable message.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pelta {

/// Base exception for every error raised by the PELTA library.
class error : public std::runtime_error {
public:
  explicit error(const std::string& what) : std::runtime_error{what} {}
};

namespace detail {

[[noreturn]] inline void raise_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "PELTA check failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw error{os.str()};
}

}  // namespace detail
}  // namespace pelta

/// Check a precondition / invariant; throws pelta::error when violated.
#define PELTA_CHECK(expr)                                                   \
  do {                                                                      \
    if (!(expr))                                                            \
      ::pelta::detail::raise_check_failure(#expr, __FILE__, __LINE__, {});  \
  } while (false)

/// Same as PELTA_CHECK but with a streamed message, e.g.
///   PELTA_CHECK_MSG(a == b, "shape mismatch: " << a << " vs " << b);
#define PELTA_CHECK_MSG(expr, stream_expr)                                  \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream pelta_check_os_;                                   \
      pelta_check_os_ << stream_expr;                                       \
      ::pelta::detail::raise_check_failure(#expr, __FILE__, __LINE__,       \
                                           pelta_check_os_.str());          \
    }                                                                       \
  } while (false)
