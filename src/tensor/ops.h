// Dense tensor kernels: elementwise maps, reductions, matrix products.
//
// These free functions are the numeric backbone used by the autodiff ops;
// they perform full shape checking and always return fresh tensors.
#pragma once

#include <functional>

#include "tensor/tensor.h"

namespace pelta::ops {

// ---- elementwise binary -----------------------------------------------------

tensor add(const tensor& a, const tensor& b);
tensor sub(const tensor& a, const tensor& b);
tensor mul(const tensor& a, const tensor& b);
tensor div(const tensor& a, const tensor& b);

// ---- scalar -----------------------------------------------------------------

tensor add_scalar(const tensor& a, float s);
tensor mul_scalar(const tensor& a, float s);

// ---- elementwise unary --------------------------------------------------------

tensor neg(const tensor& a);
tensor relu(const tensor& a);
tensor exp(const tensor& a);
tensor log(const tensor& a);
tensor sqrt(const tensor& a);
tensor tanh(const tensor& a);
tensor abs(const tensor& a);
/// -1, 0 or +1 per element (the FGSM/PGD "sign" operator).
tensor sign(const tensor& a);
tensor clamp(const tensor& a, float lo, float hi);
/// Apply an arbitrary float->float map (used by tests and data generation).
/// Like every elementwise op, large tensors split across the thread pool:
/// `f` must be pure (no internal state, safe to call concurrently and in
/// any element order).
tensor map(const tensor& a, const std::function<float(float)>& f);

// ---- reductions ---------------------------------------------------------------

float sum(const tensor& a);
float mean(const tensor& a);
float max(const tensor& a);
float min(const tensor& a);
/// Index of the maximum element (flat index).
std::int64_t argmax(const tensor& a);
/// Argmax over the last dimension; returns a tensor of indices-as-floats with
/// the leading shape. For logits [B, C] this yields predictions [B].
tensor argmax_lastdim(const tensor& a);

/// l2 norm of the whole tensor.
float norm_l2(const tensor& a);
/// l-infinity norm of the whole tensor.
float norm_linf(const tensor& a);
/// Dot product of two same-shape tensors.
float dot(const tensor& a, const tensor& b);

// ---- linear algebra -------------------------------------------------------------

/// [M,K] x [K,N] -> [M,N].
tensor matmul(const tensor& a, const tensor& b);
/// Batched [B,M,K] x [B,K,N] -> [B,M,N].
tensor bmm(const tensor& a, const tensor& b);
/// [M,N] -> [N,M].
tensor transpose2d(const tensor& a);
/// [B,M,N] -> [B,N,M].
tensor transpose_last2(const tensor& a);

}  // namespace pelta::ops
