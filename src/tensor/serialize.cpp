#include "tensor/serialize.h"

#include <cstring>

namespace pelta {

namespace {

void append_raw(byte_buffer& out, const void* src, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(src);
  out.insert(out.end(), p, p + n);
}

void read_raw(const byte_buffer& buf, std::size_t& offset, void* dst, std::size_t n) {
  PELTA_CHECK_MSG(offset + n <= buf.size(),
                  "truncated tensor buffer: need " << n << " at " << offset << " of " << buf.size());
  std::memcpy(dst, buf.data() + offset, n);
  offset += n;
}

}  // namespace

std::size_t serialize_tensor(const tensor& t, byte_buffer& out) {
  const std::size_t before = out.size();
  const std::int64_t rank = t.ndim();
  append_raw(out, &rank, sizeof(rank));
  for (std::int64_t d : t.shape()) append_raw(out, &d, sizeof(d));
  append_raw(out, t.data().data(), t.data().size() * sizeof(float));
  return out.size() - before;
}

tensor deserialize_tensor(const byte_buffer& buf, std::size_t& offset) {
  std::int64_t rank = 0;
  read_raw(buf, offset, &rank, sizeof(rank));
  PELTA_CHECK_MSG(rank >= 0 && rank <= 8, "implausible tensor rank " << rank);
  shape_t shape(static_cast<std::size_t>(rank));
  for (auto& d : shape) read_raw(buf, offset, &d, sizeof(d));
  const std::int64_t n = numel_of(shape);
  std::vector<float> data(static_cast<std::size_t>(n));
  read_raw(buf, offset, data.data(), data.size() * sizeof(float));
  return tensor{std::move(shape), std::move(data)};
}

byte_buffer to_bytes(const tensor& t) {
  byte_buffer out;
  serialize_tensor(t, out);
  return out;
}

tensor from_bytes(const byte_buffer& buf) {
  std::size_t offset = 0;
  tensor t = deserialize_tensor(buf, offset);
  PELTA_CHECK_MSG(offset == buf.size(), "trailing bytes after tensor payload");
  return t;
}

}  // namespace pelta
