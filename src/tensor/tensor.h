// Contiguous row-major n-dimensional float tensor.
//
// Value semantics: copies are deep, moves are cheap. Every higher layer of
// the library (autodiff, nn, attacks, TEE marshalling) is built on this type.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/check.h"
#include "tensor/rng.h"
#include "tensor/shape.h"

namespace pelta {

class tensor {
public:
  /// Empty scalar-shaped tensor holding a single zero.
  tensor() : shape_{}, data_(1, 0.0f) {}

  /// Zero-filled tensor of the given shape.
  explicit tensor(shape_t shape)
      : shape_{std::move(shape)}, data_(static_cast<std::size_t>(numel_of(shape_)), 0.0f) {}

  /// Tensor with explicit contents; data.size() must equal numel_of(shape).
  tensor(shape_t shape, std::vector<float> data)
      : shape_{std::move(shape)}, data_{std::move(data)} {
    PELTA_CHECK_MSG(static_cast<std::int64_t>(data_.size()) == numel_of(shape_),
                    "data size " << data_.size() << " != numel of " << to_string(shape_));
  }

  // ---- factories -----------------------------------------------------------

  static tensor zeros(shape_t shape) { return tensor{std::move(shape)}; }

  static tensor full(shape_t shape, float value) {
    tensor t{std::move(shape)};
    for (float& x : t.data_) x = value;
    return t;
  }

  static tensor ones(shape_t shape) { return full(std::move(shape), 1.0f); }

  /// Scalar tensor (shape []).
  static tensor scalar(float value) {
    tensor t;
    t.data_[0] = value;
    return t;
  }

  /// I.i.d. normal entries.
  static tensor randn(rng& gen, shape_t shape, float mean = 0.0f, float stddev = 1.0f) {
    tensor t{std::move(shape)};
    for (float& x : t.data_) x = gen.normal(mean, stddev);
    return t;
  }

  /// I.i.d. uniform entries in [lo, hi).
  static tensor rand_uniform(rng& gen, shape_t shape, float lo = 0.0f, float hi = 1.0f) {
    tensor t{std::move(shape)};
    for (float& x : t.data_) x = gen.uniform(lo, hi);
    return t;
  }

  /// [0, 1, 2, ...] as floats.
  static tensor arange(std::int64_t n) {
    tensor t{shape_t{n}};
    for (std::int64_t i = 0; i < n; ++i) t.data_[static_cast<std::size_t>(i)] = static_cast<float>(i);
    return t;
  }

  // ---- observers -----------------------------------------------------------

  const shape_t& shape() const { return shape_; }
  std::int64_t ndim() const { return static_cast<std::int64_t>(shape_.size()); }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }

  /// Extent of dimension `d`; negative d counts from the back (-1 = last).
  std::int64_t size(std::int64_t d) const {
    if (d < 0) d += ndim();
    PELTA_CHECK_MSG(d >= 0 && d < ndim(), "dim " << d << " out of range for " << to_string(shape_));
    return shape_[static_cast<std::size_t>(d)];
  }

  /// Bytes of payload (fp32), as accounted by the TEE enclave simulator.
  std::int64_t byte_size() const { return numel() * static_cast<std::int64_t>(sizeof(float)); }

  bool same_shape(const tensor& other) const { return shape_ == other.shape_; }

  std::span<const float> data() const { return {data_.data(), data_.size()}; }
  std::span<float> data() { return {data_.data(), data_.size()}; }

  // ---- element access ------------------------------------------------------

  float& operator[](std::int64_t i) {
    PELTA_CHECK_MSG(i >= 0 && i < numel(), "flat index " << i << " out of range " << numel());
    return data_[static_cast<std::size_t>(i)];
  }
  float operator[](std::int64_t i) const {
    PELTA_CHECK_MSG(i >= 0 && i < numel(), "flat index " << i << " out of range " << numel());
    return data_[static_cast<std::size_t>(i)];
  }

  float& at(std::int64_t i, std::int64_t j) { return data_[flat2(i, j)]; }
  float at(std::int64_t i, std::int64_t j) const { return data_[flat2(i, j)]; }

  float& at(std::int64_t i, std::int64_t j, std::int64_t k) { return data_[flat3(i, j, k)]; }
  float at(std::int64_t i, std::int64_t j, std::int64_t k) const { return data_[flat3(i, j, k)]; }

  float& at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l) {
    return data_[flat4(i, j, k, l)];
  }
  float at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l) const {
    return data_[flat4(i, j, k, l)];
  }

  /// Scalar value of a one-element tensor.
  float item() const {
    PELTA_CHECK_MSG(numel() == 1, "item() on tensor of shape " << to_string(shape_));
    return data_[0];
  }

  // ---- shape manipulation (always cheap or O(n) copy) -----------------------

  /// Same data, new shape (numel must match).
  tensor reshape(shape_t new_shape) const {
    PELTA_CHECK_MSG(numel_of(new_shape) == numel(),
                    "reshape " << to_string(shape_) << " -> " << to_string(new_shape));
    tensor t = *this;
    t.shape_ = std::move(new_shape);
    return t;
  }

  tensor flatten() const { return reshape({numel()}); }

  // ---- in-place arithmetic ---------------------------------------------------

  tensor& add_(const tensor& other) {
    PELTA_CHECK_MSG(same_shape(other), "add_ shape mismatch " << to_string(shape_) << " vs "
                                                              << to_string(other.shape_));
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
    return *this;
  }

  tensor& sub_(const tensor& other) {
    PELTA_CHECK_MSG(same_shape(other), "sub_ shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
    return *this;
  }

  tensor& mul_(float s) {
    for (float& x : data_) x *= s;
    return *this;
  }

  tensor& add_scaled_(const tensor& other, float s) {
    PELTA_CHECK_MSG(same_shape(other), "add_scaled_ shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
    return *this;
  }

  tensor& fill_(float v) {
    for (float& x : data_) x = v;
    return *this;
  }

  tensor& clamp_(float lo, float hi) {
    for (float& x : data_) x = x < lo ? lo : (x > hi ? hi : x);
    return *this;
  }

private:
  std::size_t flat2(std::int64_t i, std::int64_t j) const {
    PELTA_CHECK_MSG(ndim() == 2, "at(i,j) on " << to_string(shape_));
    PELTA_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1]);
    return static_cast<std::size_t>(i * shape_[1] + j);
  }
  std::size_t flat3(std::int64_t i, std::int64_t j, std::int64_t k) const {
    PELTA_CHECK_MSG(ndim() == 3, "at(i,j,k) on " << to_string(shape_));
    PELTA_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] && k >= 0 && k < shape_[2]);
    return static_cast<std::size_t>((i * shape_[1] + j) * shape_[2] + k);
  }
  std::size_t flat4(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l) const {
    PELTA_CHECK_MSG(ndim() == 4, "at(i,j,k,l) on " << to_string(shape_));
    PELTA_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] && k >= 0 && k < shape_[2] &&
                l >= 0 && l < shape_[3]);
    return static_cast<std::size_t>(((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l);
  }

  shape_t shape_;
  std::vector<float> data_;
};

}  // namespace pelta
