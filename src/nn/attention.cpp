#include "nn/attention.h"

#include <cmath>

#include "autodiff/ops_elementwise.h"
#include "autodiff/ops_linalg.h"

namespace pelta::nn {

multi_head_attention::multi_head_attention(param_store& store, rng& gen, std::string name,
                                           std::int64_t dim, std::int64_t heads)
    : name_{std::move(name)},
      dim_{dim},
      heads_{heads},
      q_{store, gen, name_ + ".q", dim, dim},
      k_{store, gen, name_ + ".k", dim, dim},
      v_{store, gen, name_ + ".v", dim, dim},
      out_{store, gen, name_ + ".out", dim, dim} {
  PELTA_CHECK_MSG(dim % heads == 0, "attention dim " << dim << " not divisible by " << heads);
}

ad::node_id multi_head_attention::apply(ad::graph& g, ad::node_id x) const {
  const std::int64_t dh = dim_ / heads_;
  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(dh));

  const ad::node_id q = q_.apply(g, x);
  const ad::node_id k = k_.apply(g, x);
  const ad::node_id v = v_.apply(g, x);

  std::vector<ad::node_id> head_outputs;
  head_outputs.reserve(static_cast<std::size_t>(heads_));
  for (std::int64_t h = 0; h < heads_; ++h) {
    const auto tag = [&](const char* part) {
      return name_ + "." + part + ".h" + std::to_string(h);
    };
    const ad::node_id qh = g.add_transform(ad::make_slice_lastdim(h * dh, dh), {q});
    const ad::node_id kh = g.add_transform(ad::make_slice_lastdim(h * dh, dh), {k});
    const ad::node_id vh = g.add_transform(ad::make_slice_lastdim(h * dh, dh), {v});
    const ad::node_id kt = g.add_transform(ad::make_transpose_last2(), {kh});
    const ad::node_id scores_raw = g.add_transform(ad::make_bmm(), {qh, kt});
    const ad::node_id scores =
        g.add_transform(ad::make_scale(inv_sqrt_dh), {scores_raw}, tag("scores"));
    const ad::node_id probs =
        g.add_transform(ad::make_softmax_lastdim(), {scores}, tag("softmax"));
    head_outputs.push_back(g.add_transform(ad::make_bmm(), {probs, vh}, tag("context")));
  }

  ad::node_id merged;
  if (heads_ == 1)
    merged = head_outputs[0];
  else
    merged = g.add_transform(ad::make_concat_lastdim(), head_outputs, name_ + ".merge");
  return out_.apply(g, merged);
}

}  // namespace pelta::nn
