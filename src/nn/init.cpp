#include "nn/init.h"

#include <cmath>

#include "tensor/check.h"

namespace pelta::nn {

tensor xavier_uniform(rng& gen, shape_t shape, std::int64_t fan_in, std::int64_t fan_out) {
  PELTA_CHECK(fan_in > 0 && fan_out > 0);
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return tensor::rand_uniform(gen, std::move(shape), -a, a);
}

tensor he_normal(rng& gen, shape_t shape, std::int64_t fan_in) {
  PELTA_CHECK(fan_in > 0);
  const float s = std::sqrt(2.0f / static_cast<float>(fan_in));
  return tensor::randn(gen, std::move(shape), 0.0f, s);
}

tensor trunc_normal02(rng& gen, shape_t shape) {
  tensor t{std::move(shape)};
  for (float& x : t.data()) {
    float v = gen.normal(0.0f, 0.02f);
    while (std::fabs(v) > 0.04f) v = gen.normal(0.0f, 0.02f);
    x = v;
  }
  return t;
}

std::int64_t conv_fan_in(const shape_t& w) {
  PELTA_CHECK(w.size() == 4);
  return w[1] * w[2] * w[3];
}

std::int64_t conv_fan_out(const shape_t& w) {
  PELTA_CHECK(w.size() == 4);
  return w[0] * w[2] * w[3];
}

}  // namespace pelta::nn
