// Composite blocks: ViT patch embedding, transformer encoder block, MLP.
#pragma once

#include "nn/attention.h"

namespace pelta::nn {

/// ViT input pipeline (the part PELTA shields, §V-A):
///   z0 = [x_class ; x¹_p E; …; x^N_p E] + E_pos
/// i.e. patchify -> per-patch projection E -> prepend learnable class token
/// -> add position embedding. Node tags: "<name>.patchify", "<name>.proj",
/// "<name>.cls", "<name>.out" (the position-embedding add).
class patch_embedding {
public:
  patch_embedding(param_store& store, rng& gen, std::string name, std::int64_t channels,
                  std::int64_t image_size, std::int64_t patch_size, std::int64_t dim);

  /// x [B,C,H,W] -> tokens [B, T+1, D].
  ad::node_id apply(ad::graph& g, ad::node_id x) const;

  std::int64_t tokens() const { return tokens_; }  ///< patch tokens (excl. class)
  std::int64_t patch_size() const { return patch_size_; }
  const std::string& name() const { return name_; }

private:
  std::string name_;
  std::int64_t patch_size_;
  std::int64_t tokens_;
  token_linear_layer proj_;
  ad::parameter* class_token_;
  ad::parameter* pos_embed_;
};

/// Feed-forward block: LN -> linear -> GELU -> linear (pre-LN convention).
class mlp_block {
public:
  mlp_block(param_store& store, rng& gen, std::string name, std::int64_t dim,
            std::int64_t hidden);
  ad::node_id apply(ad::graph& g, ad::node_id x) const;

private:
  std::string name_;
  token_linear_layer fc1_;
  token_linear_layer fc2_;
};

/// Pre-LN transformer encoder block:
///   x = x + MHA(LN(x));  x = x + MLP(LN(x)).
class encoder_block {
public:
  encoder_block(param_store& store, rng& gen, std::string name, std::int64_t dim,
                std::int64_t heads, std::int64_t mlp_hidden);
  ad::node_id apply(ad::graph& g, ad::node_id x) const;
  const multi_head_attention& attention() const { return attn_; }

private:
  std::string name_;
  layernorm_layer ln1_;
  multi_head_attention attn_;
  layernorm_layer ln2_;
  mlp_block mlp_;
};

}  // namespace pelta::nn
