// First-order optimizers over a param_store.
#pragma once

#include <vector>

#include "nn/param_store.h"

namespace pelta::nn {

/// SGD with optional momentum and decoupled weight decay.
class sgd {
public:
  explicit sgd(float lr, float momentum = 0.0f, float weight_decay = 0.0f)
      : lr_{lr}, momentum_{momentum}, weight_decay_{weight_decay} {}

  void step(param_store& params);

  float learning_rate() const { return lr_; }
  void set_learning_rate(float lr) { lr_ = lr; }

private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<tensor> velocity_;
};

/// Adam (Kingma & Ba) with decoupled weight decay (AdamW-style).
class adam {
public:
  explicit adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f,
                float weight_decay = 0.0f)
      : lr_{lr}, beta1_{beta1}, beta2_{beta2}, eps_{eps}, weight_decay_{weight_decay} {}

  void step(param_store& params);

  float learning_rate() const { return lr_; }
  void set_learning_rate(float lr) { lr_ = lr; }

private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  std::int64_t t_ = 0;
  std::vector<tensor> m_;
  std::vector<tensor> v_;
};

}  // namespace pelta::nn
