#include "nn/param_store.h"

namespace pelta::nn {

ad::parameter& param_store::create(std::string name, tensor init) {
  PELTA_CHECK_MSG(!contains(name), "duplicate parameter name: " << name);
  params_.push_back(std::make_unique<ad::parameter>(std::move(name), std::move(init)));
  return *params_.back();
}

ad::parameter& param_store::get(const std::string& name) {
  for (auto& p : params_)
    if (p->name == name) return *p;
  throw error{"unknown parameter: " + name};
}

const ad::parameter& param_store::get(const std::string& name) const {
  for (const auto& p : params_)
    if (p->name == name) return *p;
  throw error{"unknown parameter: " + name};
}

bool param_store::contains(const std::string& name) const {
  for (const auto& p : params_)
    if (p->name == name) return true;
  return false;
}

std::int64_t param_store::scalar_count() const {
  std::int64_t n = 0;
  for (const auto& p : params_) n += p->value.numel();
  return n;
}

void param_store::zero_grads() {
  for (auto& p : params_) p->grad.fill_(0.0f);
}

byte_buffer param_store::save_values() const {
  byte_buffer out;
  for (const auto& p : params_) serialize_tensor(p->value, out);
  return out;
}

void param_store::load_values(const byte_buffer& buf) {
  const std::size_t offset = load_values_at(buf, 0);
  PELTA_CHECK_MSG(offset == buf.size(), "trailing bytes in parameter payload");
}

std::size_t param_store::load_values_at(const byte_buffer& buf, std::size_t offset) {
  for (auto& p : params_) {
    tensor t = deserialize_tensor(buf, offset);
    PELTA_CHECK_MSG(t.same_shape(p->value),
                    "parameter " << p->name << " shape mismatch on load");
    p->value = std::move(t);
  }
  return offset;
}

void param_store::axpy_values(const param_store& other, float scale) {
  PELTA_CHECK_MSG(other.size() == size(), "param store structure mismatch");
  for (std::size_t i = 0; i < params_.size(); ++i) {
    PELTA_CHECK(params_[i]->value.same_shape(other.params_[i]->value));
    params_[i]->value.add_scaled_(other.params_[i]->value, scale);
  }
}

void param_store::copy_values_from(const param_store& other) {
  PELTA_CHECK_MSG(other.size() == size(), "param store structure mismatch");
  for (std::size_t i = 0; i < params_.size(); ++i) {
    PELTA_CHECK(params_[i]->value.same_shape(other.params_[i]->value));
    params_[i]->value = other.params_[i]->value;
  }
}

}  // namespace pelta::nn
