#include "nn/optimizer.h"

#include <cmath>

namespace pelta::nn {

void sgd::step(param_store& params) {
  if (velocity_.empty())
    for (std::size_t i = 0; i < params.size(); ++i)
      velocity_.emplace_back(params.at(i).value.shape());
  PELTA_CHECK_MSG(velocity_.size() == params.size(), "optimizer bound to a different store");

  for (std::size_t i = 0; i < params.size(); ++i) {
    auto& p = params.at(i);
    auto pv = p.value.data();
    auto pg = p.grad.data();
    auto vel = velocity_[i].data();
    for (std::size_t k = 0; k < pv.size(); ++k) {
      const float g = pg[k] + weight_decay_ * pv[k];
      vel[k] = momentum_ * vel[k] + g;
      pv[k] -= lr_ * vel[k];
    }
  }
}

void adam::step(param_store& params) {
  if (m_.empty())
    for (std::size_t i = 0; i < params.size(); ++i) {
      m_.emplace_back(params.at(i).value.shape());
      v_.emplace_back(params.at(i).value.shape());
    }
  PELTA_CHECK_MSG(m_.size() == params.size(), "optimizer bound to a different store");

  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto& p = params.at(i);
    auto pv = p.value.data();
    auto pg = p.grad.data();
    auto m = m_[i].data();
    auto v = v_[i].data();
    for (std::size_t k = 0; k < pv.size(); ++k) {
      const float g = pg[k];
      m[k] = beta1_ * m[k] + (1.0f - beta1_) * g;
      v[k] = beta2_ * v[k] + (1.0f - beta2_) * g * g;
      const float mhat = m[k] / bc1;
      const float vhat = v[k] / bc2;
      pv[k] -= lr_ * (mhat / (std::sqrt(vhat) + eps_) + weight_decay_ * pv[k]);
    }
  }
}

}  // namespace pelta::nn
