// Quantizing compile pass over chain-structured model graphs.
//
// The pass has three phases, deliberately separated so each is testable on
// its own:
//   1. parse_chain — walk a freshly built forward graph from input to
//      logits and describe every transform as a replayable `chain_step`.
//      Only chain-shaped graphs compile: a vertex with two input-dependent
//      children (a residual branch) or an op outside the replay vocabulary
//      is a hard PELTA_CHECK error, never a silent fp32 fallback.
//   2. plan_fusion — group the chain into fusable int8 stages
//      (linear[+relu], matmul[+add_broadcast][+relu],
//      conv2d[+batchnorm2d(eval)][+relu]) and kept-fp32 runs. A group any
//      of whose tags matches the keep-fp32 policy stays fp32 — this is the
//      knob the shield placement sweep turns (masked layers fp32 vs int8).
//   3. build_quantized_stage — fold the group's epilogue into the weights
//      (eval batch-norm becomes per-channel scale/bias before per-channel
//      quantization), quantize (tensor/quantized_tensor.h) and pre-pack for
//      ops::detail::qgemm.
//
// A compiled stage executes fp32 -> fp32: quantize activations, int8 GEMM
// with int32 accumulation, dequantize + bias + relu epilogue. Its backward
// is the straight-through fp32 gradient through the DEQUANTIZED weights
// (relu mask from the cached output) — deliberate, documented BPDA
// semantics: attacks differentiating a quantized model get the smooth
// surrogate of the step-shaped quantizer, matching how bench_extension_bpda
// treats other non-differentiable defenses.
//
// models/compiler.h wraps this machinery into a `models::model`
// (calibration over a held-out shard, parameter copying, policy defaults).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "autodiff/graph.h"
#include "autodiff/op.h"
#include "tensor/quantized_tensor.h"
#include "tensor/tensor.h"

namespace pelta::ad {
struct batchnorm_stats;  // ops_norm.h
}  // namespace pelta::ad

namespace pelta::nn {

/// The replay vocabulary: every op a compilable chain may contain.
enum class step_kind : std::uint8_t {
  reshape,
  affine,
  scale,
  relu,
  linear,
  matmul,
  add_broadcast,
  conv2d,
  batchnorm2d,
  maxpool2x2,
  global_avgpool,
};

/// One transform of the source chain, described for replay. Per-kind payload
/// fields stay defaulted when unused.
struct chain_step {
  step_kind kind{};
  ad::node_id node = ad::invalid_node;  ///< id in the parsed source graph
  std::string tag;                      ///< source node tag (preserved on replay)
  shape_t reshape_dims;                 ///< reshape: per-SAMPLE dims (batch dim dropped)
  float scale = 1.0f;                   ///< scale: y = scale*x; affine: y = scale*(x+shift)
  float shift = 0.0f;                   ///< affine only
  std::int64_t stride = 1;              ///< conv2d
  std::int64_t pad = 0;                 ///< conv2d
  float bn_eps = 0.0f;                  ///< batchnorm2d
  const ad::batchnorm_stats* bn_stats = nullptr;  ///< batchnorm2d (source-owned)
  std::vector<std::string> param_names;  ///< non-chain parents, in op-argument order
};

/// Phase 1: describe the graph's input->logits chain. PELTA_CHECKs chain
/// shape, vocabulary membership, eval-mode batch norm and parameter-leaf
/// operands (a weight-standardized conv weight is a transform operand and
/// therefore not compilable).
std::vector<chain_step> parse_chain(const ad::graph& g, ad::node_id input, ad::node_id logits);

/// A run of consecutive chain steps: one fused int8 stage (quantize = true)
/// or one kept-fp32 replay run.
struct fusion_group {
  bool quantize = false;
  std::size_t begin = 0;
  std::size_t end = 0;  ///< [begin, end) into the chain
};

/// Phase 2: partition the chain. Groups whose tags intersect
/// `keep_fp32_tags` stay fp32; adjacent fp32 runs are merged.
std::vector<fusion_group> plan_fusion(const std::vector<chain_step>& chain,
                                      const std::vector<std::string>& keep_fp32_tags);

/// One compiled int8 stage: quantized packed weights, folded bias, epilogue
/// flags and the calibrated activation scale. Immutable after compilation —
/// graphs share it via shared_ptr (op instances are per-node, stages are
/// per-model).
struct quantized_stage {
  bool is_conv = false;
  bool fuse_relu = false;
  std::string tag;        ///< tag of the group's LAST source node
  float act_scale = 1.0f; ///< per-tensor input scale (calibration fills this)

  // linear / matmul geometry
  std::int64_t in_features = 0;
  std::int64_t out_features = 0;

  // conv2d geometry
  std::int64_t in_c = 0;
  std::int64_t kh = 0;
  std::int64_t kw = 0;
  std::int64_t stride = 1;
  std::int64_t pad = 0;
  std::int64_t out_c = 0;

  quant::quantized_weights weights;  ///< packed for qgemm, per-channel scales
  std::vector<float> bias;           ///< folded bias; empty = none
  /// Straight-through backward weights, DEQUANTIZED (so backward matches the
  /// forward the attacker actually probes): [out,in] for linear/matmul,
  /// [OC,C,KH,KW] for conv.
  tensor w_backward;

  /// fp32 in -> fp32 out. Splits rows (linear) or images (conv) across the
  /// thread pool; int32 accumulation is exact, so the result is bitwise
  /// identical for every PELTA_THREADS value and batch size.
  tensor run(const tensor& x) const;

  /// Straight-through input gradient (see header comment).
  tensor backward_input(const tensor& grad_out, const tensor& x, const tensor& out) const;
};

/// Phase 3: fold + quantize + pack one quantize-planned group. `param_of`
/// resolves a parameter name to its fp32 value (the source model's store).
/// act_scale is left at 1; calibration overwrites it.
quantized_stage build_quantized_stage(
    const std::vector<chain_step>& chain, const fusion_group& group,
    const std::function<const tensor&(const std::string&)>& param_of);

/// Graph op wrapping one compiled stage (fresh instance per graph node,
/// shared immutable stage). Forward runs the int8 path; backward is the
/// straight-through fp32 gradient.
ad::op_ptr make_fused_stage(std::shared_ptr<const quantized_stage> stage);

}  // namespace pelta::nn
