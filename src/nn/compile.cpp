#include "nn/compile.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "autodiff/node.h"
#include "autodiff/ops_conv.h"
#include "autodiff/ops_elementwise.h"
#include "autodiff/ops_linalg.h"
#include "autodiff/ops_norm.h"
#include "tensor/check.h"
#include "tensor/conv.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"
#include "tensor/scratch.h"

namespace pelta::nn {

namespace {

// Mirrors the ops.cpp matmul parallelization threshold: below this many
// multiply-adds a stage runs on the calling thread.
constexpr std::int64_t k_quant_parallel_flops = 1 << 15;

}  // namespace

// ---- phase 1: parse ---------------------------------------------------------

std::vector<chain_step> parse_chain(const ad::graph& g, ad::node_id input, ad::node_id logits) {
  PELTA_CHECK_MSG(g.at(input).kind == ad::node_kind::input,
                  "parse_chain must start at the model input leaf");
  std::vector<chain_step> chain;
  ad::node_id cur = input;
  while (cur != logits) {
    const std::vector<ad::node_id> kids = g.children(cur);
    PELTA_CHECK_MSG(kids.size() == 1, "chain node " << cur << " has " << kids.size()
                                                    << " children — only chain-shaped graphs "
                                                       "compile (no residual branches)");
    const ad::node& nd = g.at(kids[0]);
    PELTA_CHECK(nd.kind == ad::node_kind::transform && nd.oper != nullptr);
    PELTA_CHECK_MSG(!nd.parents.empty() && nd.parents[0] == cur,
                    "chain op '" << nd.oper->name()
                                 << "' does not take the chain value as its first argument");
    chain_step st;
    st.node = nd.id;
    st.tag = nd.tag;
    const std::string_view op_name = nd.oper->name();
    // Every non-chain operand must be a plain parameter leaf: a transform
    // operand (e.g. a weight-standardized conv weight) cannot be folded into
    // fixed quantized scales and fails compilation loudly.
    const auto params_from = [&](std::size_t first) {
      for (std::size_t p = first; p < nd.parents.size(); ++p) {
        const ad::node& pn = g.at(nd.parents[p]);
        PELTA_CHECK_MSG(pn.kind == ad::node_kind::parameter && pn.param != nullptr,
                        "operand " << p << " of '" << op_name
                                   << "' is not a parameter leaf — not compilable");
        st.param_names.push_back(pn.param->name);
      }
    };
    if (op_name == "reshape") {
      PELTA_CHECK(nd.parents.size() == 1);
      const shape_t* target = ad::reshape_shape_of(*nd.oper);
      PELTA_CHECK(target != nullptr && !target->empty());
      st.kind = step_kind::reshape;
      st.reshape_dims.assign(target->begin() + 1, target->end());
    } else if (op_name == "scale") {
      PELTA_CHECK(nd.parents.size() == 1);
      st.kind = step_kind::scale;
      PELTA_CHECK(ad::scale_params_of(*nd.oper, &st.scale));
    } else if (op_name == "affine") {
      PELTA_CHECK(nd.parents.size() == 1);
      st.kind = step_kind::affine;
      PELTA_CHECK(ad::affine_params_of(*nd.oper, &st.scale, &st.shift));
    } else if (op_name == "relu") {
      PELTA_CHECK(nd.parents.size() == 1);
      st.kind = step_kind::relu;
    } else if (op_name == "linear") {
      PELTA_CHECK(nd.parents.size() == 2 || nd.parents.size() == 3);
      st.kind = step_kind::linear;
      params_from(1);
    } else if (op_name == "matmul") {
      PELTA_CHECK(nd.parents.size() == 2);
      st.kind = step_kind::matmul;
      params_from(1);
    } else if (op_name == "add_broadcast") {
      PELTA_CHECK(nd.parents.size() == 2);
      st.kind = step_kind::add_broadcast;
      params_from(1);
    } else if (op_name == "conv2d") {
      PELTA_CHECK(nd.parents.size() == 2 || nd.parents.size() == 3);
      st.kind = step_kind::conv2d;
      PELTA_CHECK(ad::conv2d_geometry_of(*nd.oper, &st.stride, &st.pad));
      params_from(1);
    } else if (op_name == "batchnorm2d") {
      PELTA_CHECK(nd.parents.size() == 3);
      st.kind = step_kind::batchnorm2d;
      bool is_eval = false;
      PELTA_CHECK(ad::batchnorm_params_of(*nd.oper, &st.bn_stats, &st.bn_eps, &is_eval));
      PELTA_CHECK_MSG(is_eval, "batch norm at '" << st.tag
                                                 << "' is in train mode — only eval-mode batch "
                                                    "norm (a fixed per-channel affine) compiles");
      params_from(1);
    } else if (op_name == "maxpool2x2") {
      PELTA_CHECK(nd.parents.size() == 1);
      st.kind = step_kind::maxpool2x2;
    } else if (op_name == "global_avgpool") {
      PELTA_CHECK(nd.parents.size() == 1);
      st.kind = step_kind::global_avgpool;
    } else {
      PELTA_CHECK_MSG(false, "op '" << op_name << "' is outside the compile vocabulary");
    }
    cur = nd.id;
    chain.push_back(std::move(st));
  }
  PELTA_CHECK_MSG(!chain.empty(), "empty chain between input and logits");
  return chain;
}

// ---- phase 2: plan ----------------------------------------------------------

namespace {

bool any_tag_kept(const std::vector<chain_step>& chain, std::size_t begin, std::size_t end,
                  const std::vector<std::string>& keep_fp32_tags) {
  for (std::size_t i = begin; i < end; ++i) {
    if (chain[i].tag.empty()) continue;
    if (std::find(keep_fp32_tags.begin(), keep_fp32_tags.end(), chain[i].tag) !=
        keep_fp32_tags.end())
      return true;
  }
  return false;
}

}  // namespace

std::vector<fusion_group> plan_fusion(const std::vector<chain_step>& chain,
                                      const std::vector<std::string>& keep_fp32_tags) {
  std::vector<fusion_group> groups;
  const auto push = [&groups](bool quantize, std::size_t begin, std::size_t end) {
    if (!quantize && !groups.empty() && !groups.back().quantize && groups.back().end == begin) {
      groups.back().end = end;  // merge adjacent fp32 runs
      return;
    }
    groups.push_back(fusion_group{quantize, begin, end});
  };
  std::size_t i = 0;
  while (i < chain.size()) {
    std::size_t end = i + 1;
    bool fusable = false;
    switch (chain[i].kind) {
      case step_kind::linear:
        fusable = true;
        if (end < chain.size() && chain[end].kind == step_kind::relu) ++end;
        break;
      case step_kind::matmul:
        fusable = true;
        if (end < chain.size() && chain[end].kind == step_kind::add_broadcast) ++end;
        if (end < chain.size() && chain[end].kind == step_kind::relu) ++end;
        break;
      case step_kind::conv2d:
        fusable = true;
        if (end < chain.size() && chain[end].kind == step_kind::batchnorm2d) ++end;
        if (end < chain.size() && chain[end].kind == step_kind::relu) ++end;
        break;
      default:
        break;
    }
    push(fusable && !any_tag_kept(chain, i, end, keep_fp32_tags), i, end);
    i = end;
  }
  return groups;
}

// ---- phase 3: build ---------------------------------------------------------

quantized_stage build_quantized_stage(
    const std::vector<chain_step>& chain, const fusion_group& group,
    const std::function<const tensor&(const std::string&)>& param_of) {
  PELTA_CHECK(group.quantize && group.begin < group.end && group.end <= chain.size());
  const chain_step& head = chain[group.begin];
  quantized_stage st;
  st.tag = chain[group.end - 1].tag;
  std::size_t i = group.begin + 1;
  std::vector<float> bias;
  bool has_bias = false;

  if (head.kind == step_kind::linear || head.kind == step_kind::matmul) {
    PELTA_CHECK(!head.param_names.empty());
    const tensor& w = param_of(head.param_names[0]);
    PELTA_CHECK_MSG(w.ndim() == 2, "linear weight '" << head.param_names[0] << "' is not 2-d");
    const std::int64_t k = w.size(0);
    const std::int64_t n = w.size(1);
    st.in_features = k;
    st.out_features = n;
    const tensor* bias_param = nullptr;
    if (head.kind == step_kind::linear && head.param_names.size() > 1)
      bias_param = &param_of(head.param_names[1]);
    if (head.kind == step_kind::matmul && i < group.end &&
        chain[i].kind == step_kind::add_broadcast) {
      bias_param = &param_of(chain[i].param_names[0]);
      ++i;
    }
    if (bias_param != nullptr) {
      PELTA_CHECK(bias_param->numel() == n);
      bias.assign(bias_param->data().begin(), bias_param->data().end());
      has_bias = true;
    }
    st.weights = quant::quantize_weights_kn(w.data().data(), k, n);
    // Straight-through backward weights: dequantized codes, pre-transposed to
    // [n, k] so backward_input is one ops::matmul.
    tensor wb{shape_t{n, k}};
    for (std::int64_t j = 0; j < n; ++j)
      for (std::int64_t kk = 0; kk < k; ++kk)
        wb.at(j, kk) = static_cast<float>(st.weights.codes[static_cast<std::size_t>(kk * n + j)]) *
                       st.weights.scales[static_cast<std::size_t>(j)];
    st.w_backward = std::move(wb);
  } else {
    PELTA_CHECK_MSG(head.kind == step_kind::conv2d, "quantized group must start at a GEMM op");
    PELTA_CHECK(!head.param_names.empty());
    const tensor& w0 = param_of(head.param_names[0]);
    PELTA_CHECK_MSG(w0.ndim() == 4, "conv weight '" << head.param_names[0] << "' is not 4-d");
    st.is_conv = true;
    st.stride = head.stride;
    st.pad = head.pad;
    st.out_c = w0.size(0);
    st.in_c = w0.size(1);
    st.kh = w0.size(2);
    st.kw = w0.size(3);
    const std::int64_t oc = st.out_c;
    const std::int64_t ckk = st.in_c * st.kh * st.kw;

    std::vector<float> wf(w0.data().begin(), w0.data().end());  // [OC, CKK] row-major
    bias.assign(static_cast<std::size_t>(oc), 0.0f);
    if (head.param_names.size() > 1) {
      const tensor& b0 = param_of(head.param_names[1]);
      PELTA_CHECK(b0.numel() == oc);
      bias.assign(b0.data().begin(), b0.data().end());
      has_bias = true;
    }
    if (i < group.end && chain[i].kind == step_kind::batchnorm2d) {
      // Eval-mode batch norm is y = gamma * (x - mean) / sqrt(var + eps) + beta:
      // fold it into the conv as w' = w * inv_sigma, b' = (b - mean) * inv_sigma
      // + beta BEFORE quantization, so the per-channel scales see the folded
      // magnitudes.
      const chain_step& bn = chain[i];
      const tensor& gamma = param_of(bn.param_names[0]);
      const tensor& beta = param_of(bn.param_names[1]);
      PELTA_CHECK(bn.bn_stats != nullptr && gamma.numel() == oc && beta.numel() == oc);
      const tensor& mean = bn.bn_stats->running_mean;
      const tensor& var = bn.bn_stats->running_var;
      PELTA_CHECK(mean.numel() == oc && var.numel() == oc);
      for (std::int64_t c = 0; c < oc; ++c) {
        const float inv_sigma =
            gamma.data()[static_cast<std::size_t>(c)] /
            std::sqrt(var.data()[static_cast<std::size_t>(c)] + bn.bn_eps);
        for (std::int64_t f = 0; f < ckk; ++f)
          wf[static_cast<std::size_t>(c * ckk + f)] *= inv_sigma;
        bias[static_cast<std::size_t>(c)] =
            (bias[static_cast<std::size_t>(c)] - mean.data()[static_cast<std::size_t>(c)]) *
                inv_sigma +
            beta.data()[static_cast<std::size_t>(c)];
      }
      has_bias = true;
      ++i;
    }
    st.in_features = ckk;
    st.out_features = oc;
    // GEMM-B layout [CKK, OC]: row f = im2col feature (c*KH + kh)*KW + kw,
    // column = output channel.
    std::vector<float> bkn(static_cast<std::size_t>(ckk * oc), 0.0f);
    for (std::int64_t c = 0; c < oc; ++c)
      for (std::int64_t f = 0; f < ckk; ++f)
        bkn[static_cast<std::size_t>(f * oc + c)] = wf[static_cast<std::size_t>(c * ckk + f)];
    st.weights = quant::quantize_weights_kn(bkn.data(), ckk, oc);
    tensor wb{shape_t{st.out_c, st.in_c, st.kh, st.kw}};
    std::span<float> wbd = wb.data();
    for (std::int64_t c = 0; c < oc; ++c)
      for (std::int64_t f = 0; f < ckk; ++f)
        wbd[static_cast<std::size_t>(c * ckk + f)] =
            static_cast<float>(st.weights.codes[static_cast<std::size_t>(f * oc + c)]) *
            st.weights.scales[static_cast<std::size_t>(c)];
    st.w_backward = std::move(wb);
  }

  if (i < group.end && chain[i].kind == step_kind::relu) {
    st.fuse_relu = true;
    ++i;
  }
  PELTA_CHECK_MSG(i == group.end, "unfused step inside a quantized group");
  if (has_bias) st.bias = std::move(bias);
  return st;
}

// ---- execution --------------------------------------------------------------

namespace {

// One chunk of linear-stage rows: quantize this chunk's activations into a
// chunk-local arena claim, int8-GEMM into a chunk-local int32 claim,
// dequantize into the chunk's disjoint output rows. No cross-chunk state, and
// every per-element operation is exact or singly-rounded, so results are
// bitwise identical under any chunk partitioning.
void run_linear_rows(const quantized_stage& st, const float* x, float* out, std::int64_t lo,
                     std::int64_t hi) {
  const std::int64_t k = st.in_features;
  const std::int64_t n = st.out_features;
  const std::int64_t rs = ops::detail::qgemm_row_stride(k);
  const std::int64_t rows = hi - lo;
  scratch_arena& arena = scratch_arena::local();
  scratch_typed<std::uint8_t> a8 = arena.take_typed<std::uint8_t>(
      static_cast<std::size_t>(rows * rs));
  for (std::int64_t r = 0; r < rows; ++r) {
    std::uint8_t* arow = a8.data() + r * rs;
    quant::quantize_activations(x + (lo + r) * k, k, st.act_scale, arow);
    for (std::int64_t kk = k; kk < rs; ++kk) arow[kk] = 0;  // pad bytes: B pads are zero too
  }
  scratch_typed<std::int32_t> acc =
      arena.take_typed<std::int32_t>(static_cast<std::size_t>(rows * n));
  ops::detail::qgemm(a8.data(), rs, st.weights.packed.data(), st.weights.colsums.data(),
                     acc.data(), rows, k, n);
  quant::dequantize_rows(acc.data(), rows, n, st.act_scale, st.weights.scales.data(),
                         st.bias.empty() ? nullptr : st.bias.data(), st.fuse_relu, out + lo * n);
}

tensor run_linear(const quantized_stage& st, const tensor& x) {
  PELTA_CHECK_MSG(x.ndim() == 2 && x.size(1) == st.in_features,
                  "quantized linear '" << st.tag << "' expects [batch, " << st.in_features
                                       << "], got " << to_string(x.shape()));
  const std::int64_t m = x.size(0);
  const std::int64_t k = st.in_features;
  const std::int64_t n = st.out_features;
  tensor out{shape_t{m, n}};
  const float* px = x.data().data();
  float* po = out.data().data();
  if (m >= 2 && m * k * n >= k_quant_parallel_flops) {
    std::int64_t grain = std::max<std::int64_t>(1, m / (8 * parallel_thread_count()));
    grain = (grain + ops::detail::k_gemm_mr - 1) / ops::detail::k_gemm_mr *
            ops::detail::k_gemm_mr;
    parallel_for_range(m, grain, [&st, px, po](std::int64_t lo, std::int64_t hi) {
      run_linear_rows(st, px, po, lo, hi);
    });
  } else {
    run_linear_rows(st, px, po, 0, m);
  }
  return out;
}

// One image of a conv stage: quantize the whole image once, build shifted-u8
// im2col rows (out-of-bounds pixels take the exact zero code), int8-GEMM
// [OH*OW, CKK] x [CKK, OC], dequantize, transpose to NCHW.
void run_conv_image(const quantized_stage& st, const float* img, std::int64_t h, std::int64_t w,
                    std::int64_t oh, std::int64_t ow, float* out_img) {
  const std::int64_t c = st.in_c;
  const std::int64_t ckk = st.in_features;
  const std::int64_t oc = st.out_features;
  const std::int64_t rs = ops::detail::qgemm_row_stride(ckk);
  const std::int64_t ohow = oh * ow;
  const std::uint8_t zero_code = static_cast<std::uint8_t>(quant::k_act_zero);
  scratch_arena& arena = scratch_arena::local();
  scratch_typed<std::uint8_t> img8 =
      arena.take_typed<std::uint8_t>(static_cast<std::size_t>(c * h * w));
  quant::quantize_activations(img, c * h * w, st.act_scale, img8.data());
  scratch_typed<std::uint8_t> a8 =
      arena.take_typed<std::uint8_t>(static_cast<std::size_t>(ohow * rs));
  std::int64_t row = 0;
  for (std::int64_t oy = 0; oy < oh; ++oy) {
    for (std::int64_t ox = 0; ox < ow; ++ox, ++row) {
      std::uint8_t* arow = a8.data() + row * rs;
      std::int64_t col = 0;
      for (std::int64_t cc = 0; cc < c; ++cc) {
        for (std::int64_t ky = 0; ky < st.kh; ++ky) {
          const std::int64_t iy = oy * st.stride + ky - st.pad;
          for (std::int64_t kx = 0; kx < st.kw; ++kx, ++col) {
            const std::int64_t ix = ox * st.stride + kx - st.pad;
            arow[col] = (iy >= 0 && iy < h && ix >= 0 && ix < w)
                            ? img8.data()[(cc * h + iy) * w + ix]
                            : zero_code;
          }
        }
      }
      for (; col < rs; ++col) arow[col] = 0;
    }
  }
  scratch_typed<std::int32_t> acc =
      arena.take_typed<std::int32_t>(static_cast<std::size_t>(ohow * oc));
  ops::detail::qgemm(a8.data(), rs, st.weights.packed.data(), st.weights.colsums.data(),
                     acc.data(), ohow, ckk, oc);
  scratch_buffer deq = arena.take(static_cast<std::size_t>(ohow * oc));
  quant::dequantize_rows(acc.data(), ohow, oc, st.act_scale, st.weights.scales.data(),
                         st.bias.empty() ? nullptr : st.bias.data(), st.fuse_relu, deq.data());
  for (std::int64_t ocx = 0; ocx < oc; ++ocx)
    for (std::int64_t p = 0; p < ohow; ++p) out_img[ocx * ohow + p] = deq.data()[p * oc + ocx];
}

tensor run_conv(const quantized_stage& st, const tensor& x) {
  PELTA_CHECK_MSG(x.ndim() == 4 && x.size(1) == st.in_c,
                  "quantized conv '" << st.tag << "' expects [batch, " << st.in_c
                                     << ", H, W], got " << to_string(x.shape()));
  const std::int64_t b = x.size(0);
  const std::int64_t h = x.size(2);
  const std::int64_t w = x.size(3);
  const std::int64_t oh = (h + 2 * st.pad - st.kh) / st.stride + 1;
  const std::int64_t ow = (w + 2 * st.pad - st.kw) / st.stride + 1;
  PELTA_CHECK_MSG(oh >= 1 && ow >= 1, "quantized conv '" << st.tag << "' output would be empty");
  tensor out{shape_t{b, st.out_c, oh, ow}};
  const float* px = x.data().data();
  float* po = out.data().data();
  const std::int64_t per_image = st.in_c * h * w;
  const std::int64_t out_per_image = st.out_c * oh * ow;
  const auto one = [&st, px, po, h, w, oh, ow, per_image, out_per_image](std::int64_t i) {
    run_conv_image(st, px + i * per_image, h, w, oh, ow, po + i * out_per_image);
  };
  if (b >= 2 && b * oh * ow * st.in_features * st.out_features >= k_quant_parallel_flops) {
    parallel_for(b, one);
  } else {
    for (std::int64_t i = 0; i < b; ++i) one(i);
  }
  return out;
}

}  // namespace

tensor quantized_stage::run(const tensor& x) const {
  return is_conv ? run_conv(*this, x) : run_linear(*this, x);
}

tensor quantized_stage::backward_input(const tensor& grad_out, const tensor& x,
                                       const tensor& out) const {
  tensor g = grad_out;
  if (fuse_relu) {
    std::span<float> gd = g.data();
    std::span<const float> od = out.data();
    PELTA_CHECK(gd.size() == od.size());
    for (std::size_t i = 0; i < gd.size(); ++i)
      if (!(od[i] > 0.0f)) gd[i] = 0.0f;
  }
  if (is_conv) return ops::conv2d_backward_input(g, w_backward, stride, pad, x.shape());
  return ops::matmul(g, w_backward);
}

// ---- graph op ---------------------------------------------------------------

namespace {

class fused_stage_op final : public ad::op {
public:
  explicit fused_stage_op(std::shared_ptr<const quantized_stage> stage)
      : stage_{std::move(stage)} {}

  std::string_view name() const override { return stage_->is_conv ? "qconv2d" : "qlinear"; }

  tensor forward(std::span<const tensor* const> inputs) override {
    PELTA_CHECK(inputs.size() == 1);
    return stage_->run(*inputs[0]);
  }

  // Straight-through (BPDA) gradient: fp32 chain rule through the
  // DEQUANTIZED weights, relu mask from the cached quantized output.
  std::vector<tensor> backward(const tensor& grad_out, std::span<const tensor* const> inputs,
                               const tensor& output) const override {
    PELTA_CHECK(inputs.size() == 1);
    std::vector<tensor> grads;
    grads.push_back(stage_->backward_input(grad_out, *inputs[0], output));
    return grads;
  }

private:
  std::shared_ptr<const quantized_stage> stage_;
};

}  // namespace

ad::op_ptr make_fused_stage(std::shared_ptr<const quantized_stage> stage) {
  PELTA_CHECK(stage != nullptr);
  return std::make_unique<fused_stage_op>(std::move(stage));
}

}  // namespace pelta::nn
