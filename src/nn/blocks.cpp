#include "nn/blocks.h"

#include "autodiff/ops_conv.h"
#include "autodiff/ops_elementwise.h"
#include "autodiff/ops_linalg.h"
#include "nn/init.h"

namespace pelta::nn {

patch_embedding::patch_embedding(param_store& store, rng& gen, std::string name,
                                 std::int64_t channels, std::int64_t image_size,
                                 std::int64_t patch_size, std::int64_t dim)
    : name_{std::move(name)},
      patch_size_{patch_size},
      tokens_{(image_size / patch_size) * (image_size / patch_size)},
      proj_{store, gen, name_ + ".proj", channels * patch_size * patch_size, dim} {
  PELTA_CHECK_MSG(image_size % patch_size == 0,
                  "patch size " << patch_size << " does not divide image size " << image_size);
  class_token_ = &store.create(name_ + ".cls", trunc_normal02(gen, {dim}));
  pos_embed_ = &store.create(name_ + ".pos", trunc_normal02(gen, {tokens_ + 1, dim}));
}

ad::node_id patch_embedding::apply(ad::graph& g, ad::node_id x) const {
  const ad::node_id patches =
      g.add_transform(ad::make_patchify(patch_size_), {x}, name_ + ".patchify");
  const ad::node_id projected = proj_.apply(g, patches);
  const ad::node_id with_cls = g.add_transform(
      ad::make_prepend_token(), {g.add_parameter(*class_token_), projected}, name_ + ".cls_cat");
  return g.add_transform(ad::make_add_broadcast(), {with_cls, g.add_parameter(*pos_embed_)},
                         name_ + ".out");
}

mlp_block::mlp_block(param_store& store, rng& gen, std::string name, std::int64_t dim,
                     std::int64_t hidden)
    : name_{std::move(name)},
      fc1_{store, gen, name_ + ".fc1", dim, hidden},
      fc2_{store, gen, name_ + ".fc2", hidden, dim} {}

ad::node_id mlp_block::apply(ad::graph& g, ad::node_id x) const {
  const ad::node_id h = fc1_.apply(g, x);
  const ad::node_id a = g.add_transform(ad::make_gelu(), {h}, name_ + ".gelu");
  return fc2_.apply(g, a);
}

encoder_block::encoder_block(param_store& store, rng& gen, std::string name, std::int64_t dim,
                             std::int64_t heads, std::int64_t mlp_hidden)
    : name_{std::move(name)},
      ln1_{store, name_ + ".ln1", dim},
      attn_{store, gen, name_ + ".attn", dim, heads},
      ln2_{store, name_ + ".ln2", dim},
      mlp_{store, gen, name_ + ".mlp", dim, mlp_hidden} {}

ad::node_id encoder_block::apply(ad::graph& g, ad::node_id x) const {
  const ad::node_id a = attn_.apply(g, ln1_.apply(g, x));
  const ad::node_id x1 = g.add_transform(ad::make_add(), {x, a}, name_ + ".res1");
  const ad::node_id m = mlp_.apply(g, ln2_.apply(g, x1));
  return g.add_transform(ad::make_add(), {x1, m}, name_ + ".res2");
}

}  // namespace pelta::nn
