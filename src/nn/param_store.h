// Ownership of a model's trainable parameters.
//
// Parameters have stable addresses for the lifetime of the store (graphs and
// optimizers hold pointers), support named lookup (the shield masks specific
// parameter names), and serialize to flat byte buffers for the FL wire.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "autodiff/node.h"
#include "tensor/serialize.h"

namespace pelta::nn {

class param_store {
public:
  param_store() = default;
  param_store(const param_store&) = delete;
  param_store& operator=(const param_store&) = delete;
  param_store(param_store&&) = default;
  param_store& operator=(param_store&&) = default;

  /// Create a named parameter; names must be unique within the store.
  ad::parameter& create(std::string name, tensor init);

  /// Lookup by exact name; throws when absent.
  ad::parameter& get(const std::string& name);
  const ad::parameter& get(const std::string& name) const;
  bool contains(const std::string& name) const;

  std::size_t size() const { return params_.size(); }
  ad::parameter& at(std::size_t i) { return *params_[i]; }
  const ad::parameter& at(std::size_t i) const { return *params_[i]; }

  /// Total scalar parameter count (Table I "model portion" denominators).
  std::int64_t scalar_count() const;

  void zero_grads();

  /// Flatten all parameter values (in creation order) to bytes / restore.
  /// Shapes must match on load — this is the FL model-update payload.
  byte_buffer save_values() const;
  void load_values(const byte_buffer& buf);
  /// Load starting at `offset`; returns the offset past the parameters
  /// (lets callers append further state, e.g. batch-norm buffers).
  std::size_t load_values_at(const byte_buffer& buf, std::size_t offset);

  /// Elementwise in-place: value += scale * other.value (FedAvg merges).
  void axpy_values(const param_store& other, float scale);
  /// Copy values from another store with identical structure.
  void copy_values_from(const param_store& other);

private:
  std::vector<std::unique_ptr<ad::parameter>> params_;
};

}  // namespace pelta::nn
