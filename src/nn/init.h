// Weight initialization schemes.
#pragma once

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace pelta::nn {

/// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
tensor xavier_uniform(rng& gen, shape_t shape, std::int64_t fan_in, std::int64_t fan_out);

/// He/Kaiming normal: N(0, sqrt(2 / fan_in)) — for ReLU conv stacks.
tensor he_normal(rng& gen, shape_t shape, std::int64_t fan_in);

/// Truncated normal with std 0.02 (ViT token/position embeddings).
tensor trunc_normal02(rng& gen, shape_t shape);

/// Fan-in/out of a conv weight [OC, C, KH, KW].
std::int64_t conv_fan_in(const shape_t& w);
std::int64_t conv_fan_out(const shape_t& w);

}  // namespace pelta::nn
