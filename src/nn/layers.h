// Reusable layers: thin builders that register parameters in a param_store
// and append their transforms to a graph on apply(). Node tags follow the
// layer name, which is how the PELTA shield frontier and the SAGA attack
// locate specific vertices.
#pragma once

#include <string>

#include "autodiff/graph.h"
#include "autodiff/ops_norm.h"
#include "nn/param_store.h"
#include "tensor/rng.h"

namespace pelta::nn {

/// Dense layer on 2-d activations [B,In] -> [B,Out].
class linear_layer {
public:
  linear_layer(param_store& store, rng& gen, std::string name, std::int64_t in, std::int64_t out,
               bool bias = true);
  ad::node_id apply(ad::graph& g, ad::node_id x) const;
  const std::string& name() const { return name_; }

private:
  std::string name_;
  ad::parameter* w_;
  ad::parameter* b_ = nullptr;
};

/// Per-token dense layer on 3-d activations [B,T,In] -> [B,T,Out].
class token_linear_layer {
public:
  token_linear_layer(param_store& store, rng& gen, std::string name, std::int64_t in,
                     std::int64_t out, bool bias = true);
  ad::node_id apply(ad::graph& g, ad::node_id x) const;
  const std::string& name() const { return name_; }

private:
  std::string name_;
  ad::parameter* w_;
  ad::parameter* b_ = nullptr;
};

/// 2-d convolution, optionally with Big-Transfer weight standardization
/// applied to the kernel before the convolution (the WS node is tagged
/// "<name>.ws" and the conv output "<name>").
class conv2d_layer {
public:
  conv2d_layer(param_store& store, rng& gen, std::string name, std::int64_t in_ch,
               std::int64_t out_ch, std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               bool bias, bool weight_standardized);
  ad::node_id apply(ad::graph& g, ad::node_id x) const;
  const std::string& name() const { return name_; }

private:
  std::string name_;
  ad::parameter* w_;
  ad::parameter* b_ = nullptr;
  std::int64_t stride_;
  std::int64_t pad_;
  bool weight_std_;
};

/// Batch normalization (ResNet-v2). Owns running statistics; the apply-time
/// mode selects batch statistics (train) or running statistics (eval).
class batchnorm_layer {
public:
  batchnorm_layer(param_store& store, std::string name, std::int64_t channels);
  ad::node_id apply(ad::graph& g, ad::node_id x, ad::norm_mode mode) const;
  const std::string& name() const { return name_; }
  ad::batchnorm_stats* stats() const { return stats_.get(); }

private:
  std::string name_;
  ad::parameter* gamma_;
  ad::parameter* beta_;
  std::unique_ptr<ad::batchnorm_stats> stats_;  // stable address across graphs
};

/// Group normalization (BiT).
class groupnorm_layer {
public:
  groupnorm_layer(param_store& store, std::string name, std::int64_t channels,
                  std::int64_t groups);
  ad::node_id apply(ad::graph& g, ad::node_id x) const;

private:
  std::string name_;
  ad::parameter* gamma_;
  ad::parameter* beta_;
  std::int64_t groups_;
};

/// Layer normalization over the embedding dimension (ViT).
class layernorm_layer {
public:
  layernorm_layer(param_store& store, std::string name, std::int64_t dim);
  ad::node_id apply(ad::graph& g, ad::node_id x) const;

private:
  std::string name_;
  ad::parameter* gamma_;
  ad::parameter* beta_;
};

}  // namespace pelta::nn
