// Multi-head self-attention (Vaswani et al.) built from primitive graph ops.
//
// The per-head attention probability nodes are tagged
// "<name>.softmax.h<k>" so the Self-Attention Gradient Attack (SAGA) can
// read the attention weight matrices W^(att)_{l,i} of Eq. 4 from a clear
// (non-shielded) region of the graph.
#pragma once

#include "nn/layers.h"

namespace pelta::nn {

class multi_head_attention {
public:
  multi_head_attention(param_store& store, rng& gen, std::string name, std::int64_t dim,
                       std::int64_t heads);

  /// x [B,T,D] -> [B,T,D].
  ad::node_id apply(ad::graph& g, ad::node_id x) const;

  std::int64_t heads() const { return heads_; }
  const std::string& name() const { return name_; }

private:
  std::string name_;
  std::int64_t dim_;
  std::int64_t heads_;
  token_linear_layer q_;
  token_linear_layer k_;
  token_linear_layer v_;
  token_linear_layer out_;
};

}  // namespace pelta::nn
