#include "nn/layers.h"

#include "autodiff/ops_conv.h"
#include "autodiff/ops_loss.h"
#include "nn/init.h"

namespace pelta::nn {

linear_layer::linear_layer(param_store& store, rng& gen, std::string name, std::int64_t in,
                           std::int64_t out, bool bias)
    : name_{std::move(name)} {
  w_ = &store.create(name_ + ".w", xavier_uniform(gen, {in, out}, in, out));
  if (bias) b_ = &store.create(name_ + ".b", tensor::zeros({out}));
}

ad::node_id linear_layer::apply(ad::graph& g, ad::node_id x) const {
  std::vector<ad::node_id> parents{x, g.add_parameter(*w_)};
  if (b_ != nullptr) parents.push_back(g.add_parameter(*b_));
  return g.add_transform(ad::make_linear(b_ != nullptr), std::move(parents), name_);
}

token_linear_layer::token_linear_layer(param_store& store, rng& gen, std::string name,
                                       std::int64_t in, std::int64_t out, bool bias)
    : name_{std::move(name)} {
  w_ = &store.create(name_ + ".w", xavier_uniform(gen, {in, out}, in, out));
  if (bias) b_ = &store.create(name_ + ".b", tensor::zeros({out}));
}

ad::node_id token_linear_layer::apply(ad::graph& g, ad::node_id x) const {
  std::vector<ad::node_id> parents{x, g.add_parameter(*w_)};
  if (b_ != nullptr) parents.push_back(g.add_parameter(*b_));
  return g.add_transform(ad::make_token_linear(b_ != nullptr), std::move(parents), name_);
}

conv2d_layer::conv2d_layer(param_store& store, rng& gen, std::string name, std::int64_t in_ch,
                           std::int64_t out_ch, std::int64_t kernel, std::int64_t stride,
                           std::int64_t pad, bool bias, bool weight_standardized)
    : name_{std::move(name)}, stride_{stride}, pad_{pad}, weight_std_{weight_standardized} {
  const shape_t ws{out_ch, in_ch, kernel, kernel};
  w_ = &store.create(name_ + ".w", he_normal(gen, ws, conv_fan_in(ws)));
  if (bias) b_ = &store.create(name_ + ".b", tensor::zeros({out_ch}));
}

ad::node_id conv2d_layer::apply(ad::graph& g, ad::node_id x) const {
  ad::node_id w_node = g.add_parameter(*w_);
  if (weight_std_)
    w_node = g.add_transform(ad::make_weight_standardize(), {w_node}, name_ + ".ws");
  std::vector<ad::node_id> parents{x, w_node};
  if (b_ != nullptr) parents.push_back(g.add_parameter(*b_));
  return g.add_transform(ad::make_conv2d(stride_, pad_, b_ != nullptr), std::move(parents),
                         name_);
}

batchnorm_layer::batchnorm_layer(param_store& store, std::string name, std::int64_t channels)
    : name_{std::move(name)}, stats_{std::make_unique<ad::batchnorm_stats>()} {
  gamma_ = &store.create(name_ + ".gamma", tensor::ones({channels}));
  beta_ = &store.create(name_ + ".beta", tensor::zeros({channels}));
  stats_->running_mean = tensor::zeros({channels});
  stats_->running_var = tensor::ones({channels});
}

ad::node_id batchnorm_layer::apply(ad::graph& g, ad::node_id x, ad::norm_mode mode) const {
  return g.add_transform(ad::make_batchnorm2d(stats_.get(), mode),
                         {x, g.add_parameter(*gamma_), g.add_parameter(*beta_)}, name_);
}

groupnorm_layer::groupnorm_layer(param_store& store, std::string name, std::int64_t channels,
                                 std::int64_t groups)
    : name_{std::move(name)}, groups_{groups} {
  gamma_ = &store.create(name_ + ".gamma", tensor::ones({channels}));
  beta_ = &store.create(name_ + ".beta", tensor::zeros({channels}));
}

ad::node_id groupnorm_layer::apply(ad::graph& g, ad::node_id x) const {
  return g.add_transform(ad::make_groupnorm(groups_),
                         {x, g.add_parameter(*gamma_), g.add_parameter(*beta_)}, name_);
}

layernorm_layer::layernorm_layer(param_store& store, std::string name, std::int64_t dim)
    : name_{std::move(name)} {
  gamma_ = &store.create(name_ + ".gamma", tensor::ones({dim}));
  beta_ = &store.create(name_ + ".beta", tensor::zeros({dim}));
}

ad::node_id layernorm_layer::apply(ad::graph& g, ad::node_id x) const {
  return g.add_transform(ad::make_layernorm_lastdim(),
                         {x, g.add_parameter(*gamma_), g.add_parameter(*beta_)}, name_);
}

}  // namespace pelta::nn
