// Synthetic structured image datasets.
//
// Substitution (documented in DESIGN.md §4): the paper evaluates on
// CIFAR-10, CIFAR-100 and ImageNet, which are not available offline. We
// generate per-class smooth templates (low-resolution noise bilinearly
// upsampled) plus i.i.d. pixel noise and brightness jitter. Template
// separation is calibrated so that (a) models train to high clean accuracy
// and (b) unshielded iterative attacks inside the paper's ε-ball succeed —
// the same operating point as the paper's benchmarks.
#pragma once

#include <string>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace pelta::data {

struct dataset_config {
  std::string name;
  std::int64_t classes = 10;
  std::int64_t channels = 3;
  std::int64_t image_size = 16;
  std::int64_t train_per_class = 200;
  std::int64_t test_per_class = 40;
  /// Smooth (low-frequency) class pattern — the "robust" feature carrying
  /// most of the clean-accuracy signal.
  float template_amp = 0.10f;
  /// High-frequency ±1 per-pixel class signature — a "non-robust" feature
  /// (Ilyas et al.): highly discriminative, yet entirely flippable inside
  /// the paper's ε-ball, which is what lets gradient attacks succeed
  /// against unshielded models at the paper's operating point. CNNs (texture
  /// bias) key on this band.
  float signature_amp = 0.02f;
  /// Block-constant ±1 per-class signature at `block_size` granularity — the
  /// low-frequency non-robust feature the ViT family keys on. Carrying the
  /// two signatures in disjoint frequency bands reproduces the poor
  /// CNN↔ViT adversarial transfer the paper's ensemble defense relies on
  /// (Mahmood et al. [44]).
  float block_signature_amp = 0.02f;
  std::int64_t block_size = 4;
  float noise_std = 0.04f;        ///< per-pixel Gaussian noise
  float brightness_jitter = 0.02f;///< per-image uniform brightness shift
  std::uint64_t seed = 42;
};

/// Table II dataset presets (scaled-down analogues; ε values follow the paper).
dataset_config cifar10_like();
dataset_config cifar100_like();
dataset_config imagenet_like();

struct batch {
  tensor images;  ///< [N,C,H,W] in [0,1]
  tensor labels;  ///< [N] class indices as floats
};

class dataset {
public:
  explicit dataset(const dataset_config& config);

  const dataset_config& config() const { return config_; }
  const tensor& template_of(std::int64_t cls) const;

  const tensor& train_images() const { return train_.images; }
  const tensor& train_labels() const { return train_.labels; }
  const tensor& test_images() const { return test_.images; }
  const tensor& test_labels() const { return test_.labels; }
  std::int64_t train_size() const { return train_.labels.numel(); }
  std::int64_t test_size() const { return test_.labels.numel(); }

  /// Single image [C,H,W] / label from the given split.
  tensor test_image(std::int64_t i) const;
  std::int64_t test_label(std::int64_t i) const;

  /// Mini-batch of train images at the given indices.
  batch gather_train(const std::vector<std::int64_t>& indices) const;

  /// Fresh i.i.d. sample from class `cls` (for property tests / extra eval).
  tensor sample_image(rng& gen, std::int64_t cls) const;

private:
  batch generate_split(rng& gen, std::int64_t per_class) const;

  dataset_config config_;
  std::vector<tensor> templates_;  // per class [C,H,W]
  batch train_;
  batch test_;
};

/// Epoch shuffler producing deterministic mini-batch index lists.
class batch_iterator {
public:
  batch_iterator(std::int64_t dataset_size, std::int64_t batch_size, rng gen);

  /// Indices of the next mini-batch; reshuffles when the epoch is exhausted.
  std::vector<std::int64_t> next();
  std::int64_t batches_per_epoch() const;

private:
  void reshuffle();

  std::int64_t size_;
  std::int64_t batch_size_;
  rng gen_;
  std::vector<std::int64_t> order_;
  std::int64_t cursor_ = 0;
};

}  // namespace pelta::data
