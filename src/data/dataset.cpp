#include "data/dataset.h"

#include <algorithm>
#include <numeric>

#include "tensor/conv.h"
#include "tensor/ops.h"

namespace pelta::data {

dataset_config cifar10_like() {
  dataset_config c;
  c.name = "cifar10_like";
  c.classes = 10;
  c.image_size = 16;
  c.train_per_class = 200;
  c.test_per_class = 40;
  c.template_amp = 0.10f;
  c.signature_amp = 0.02f;
  c.noise_std = 0.04f;
  c.seed = 1001;
  return c;
}

dataset_config cifar100_like() {
  dataset_config c;
  c.name = "cifar100_like";
  c.classes = 20;             // scaled-down analogue of the 100-class regime:
  c.image_size = 16;          // more classes, tighter templates than cifar10_like
  c.train_per_class = 120;
  c.test_per_class = 30;
  c.template_amp = 0.08f;
  c.signature_amp = 0.02f;
  c.noise_std = 0.04f;
  c.seed = 1002;
  return c;
}

dataset_config imagenet_like() {
  dataset_config c;
  c.name = "imagenet_like";
  c.classes = 20;
  c.image_size = 32;          // larger images, paper uses ε = 0.062 here
  c.train_per_class = 100;
  c.test_per_class = 25;
  c.template_amp = 0.10f;
  c.signature_amp = 0.03f;
  c.noise_std = 0.05f;
  c.seed = 1003;
  return c;
}

namespace {

// Smooth unit-l∞ field: low-resolution Gaussian noise, bilinearly upsampled.
tensor smooth_field(rng& gen, std::int64_t channels, std::int64_t size) {
  const std::int64_t low = std::max<std::int64_t>(2, size / 4);
  tensor coarse = tensor::randn(gen, {channels, low, low});
  tensor up = ops::upsample_bilinear(coarse, size / low);
  const float peak = ops::norm_linf(up);
  if (peak > 0.0f) up.mul_(1.0f / peak);
  return up;  // [C, size, size], values in [-1, 1]
}

}  // namespace

dataset::dataset(const dataset_config& config) : config_{config} {
  PELTA_CHECK_MSG(config.classes >= 2, "dataset needs >= 2 classes");
  rng gen{config.seed};

  templates_.reserve(static_cast<std::size_t>(config.classes));
  for (std::int64_t c = 0; c < config.classes; ++c) {
    tensor field = smooth_field(gen, config.channels, config.image_size);
    // template = mid-grey + smooth pattern + per-pixel hf signature
    //          + block-constant lf signature
    tensor t = ops::add_scalar(ops::mul_scalar(field, config.template_amp), 0.5f);
    for (float& v : t.data())
      v += config.signature_amp * (gen.bernoulli(0.5) ? 1.0f : -1.0f);
    const std::int64_t s = config.image_size, bs = config.block_size, nb = s / bs;
    for (std::int64_t ch = 0; ch < config.channels; ++ch)
      for (std::int64_t by = 0; by < nb; ++by)
        for (std::int64_t bx = 0; bx < nb; ++bx) {
          const float sign = gen.bernoulli(0.5) ? 1.0f : -1.0f;
          for (std::int64_t dy = 0; dy < bs; ++dy)
            for (std::int64_t dx = 0; dx < bs; ++dx)
              t.at(ch, by * bs + dy, bx * bs + dx) += config.block_signature_amp * sign;
        }
    templates_.push_back(std::move(t));
  }

  rng train_gen = gen.fork(1);
  rng test_gen = gen.fork(2);
  train_ = generate_split(train_gen, config.train_per_class);
  test_ = generate_split(test_gen, config.test_per_class);
}

const tensor& dataset::template_of(std::int64_t cls) const {
  PELTA_CHECK_MSG(cls >= 0 && cls < config_.classes, "class " << cls << " out of range");
  return templates_[static_cast<std::size_t>(cls)];
}

batch dataset::generate_split(rng& gen, std::int64_t per_class) const {
  const std::int64_t n = per_class * config_.classes;
  const std::int64_t c = config_.channels, s = config_.image_size;
  batch out{tensor{shape_t{n, c, s, s}}, tensor{shape_t{n}}};
  std::int64_t row = 0;
  for (std::int64_t cls = 0; cls < config_.classes; ++cls) {
    for (std::int64_t k = 0; k < per_class; ++k, ++row) {
      tensor img = sample_image(gen, cls);
      auto src = img.data();
      auto dst = out.images.data();
      std::copy(src.begin(), src.end(), dst.begin() + row * c * s * s);
      out.labels[row] = static_cast<float>(cls);
    }
  }
  return out;
}

tensor dataset::sample_image(rng& gen, std::int64_t cls) const {
  const tensor& tmpl = template_of(cls);
  tensor img = tmpl;
  const float shift = gen.uniform(-config_.brightness_jitter, config_.brightness_jitter);
  for (float& x : img.data()) x += shift + gen.normal(0.0f, config_.noise_std);
  img.clamp_(0.0f, 1.0f);
  return img;
}

tensor dataset::test_image(std::int64_t i) const {
  PELTA_CHECK_MSG(i >= 0 && i < test_size(), "test index " << i << " out of range");
  const std::int64_t c = config_.channels, s = config_.image_size;
  tensor img{shape_t{c, s, s}};
  auto src = test_.images.data();
  std::copy(src.begin() + i * c * s * s, src.begin() + (i + 1) * c * s * s, img.data().begin());
  return img;
}

std::int64_t dataset::test_label(std::int64_t i) const {
  PELTA_CHECK_MSG(i >= 0 && i < test_size(), "test index " << i << " out of range");
  return static_cast<std::int64_t>(test_.labels[i]);
}

batch dataset::gather_train(const std::vector<std::int64_t>& indices) const {
  const std::int64_t n = static_cast<std::int64_t>(indices.size());
  const std::int64_t c = config_.channels, s = config_.image_size;
  batch out{tensor{shape_t{n, c, s, s}}, tensor{shape_t{n}}};
  auto src = train_.images.data();
  auto dst = out.images.data();
  for (std::int64_t row = 0; row < n; ++row) {
    const std::int64_t i = indices[static_cast<std::size_t>(row)];
    PELTA_CHECK_MSG(i >= 0 && i < train_size(), "train index " << i << " out of range");
    std::copy(src.begin() + i * c * s * s, src.begin() + (i + 1) * c * s * s,
              dst.begin() + row * c * s * s);
    out.labels[row] = train_.labels[i];
  }
  return out;
}

batch_iterator::batch_iterator(std::int64_t dataset_size, std::int64_t batch_size, rng gen)
    : size_{dataset_size}, batch_size_{batch_size}, gen_{gen} {
  PELTA_CHECK(dataset_size > 0 && batch_size > 0);
  order_.resize(static_cast<std::size_t>(size_));
  std::iota(order_.begin(), order_.end(), 0);
  reshuffle();
}

void batch_iterator::reshuffle() {
  std::shuffle(order_.begin(), order_.end(), gen_.engine());
  cursor_ = 0;
}

std::vector<std::int64_t> batch_iterator::next() {
  if (cursor_ >= size_) reshuffle();
  const std::int64_t take = std::min(batch_size_, size_ - cursor_);
  std::vector<std::int64_t> out(order_.begin() + cursor_, order_.begin() + cursor_ + take);
  cursor_ += take;
  return out;
}

std::int64_t batch_iterator::batches_per_epoch() const {
  return (size_ + batch_size_ - 1) / batch_size_;
}

}  // namespace pelta::data
