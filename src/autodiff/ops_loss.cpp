#include "autodiff/ops_loss.h"

#include <cmath>

#include "tensor/ops.h"

namespace pelta::ad {

namespace {

class cross_entropy_op final : public op {
public:
  std::string_view name() const override { return "cross_entropy"; }

  tensor forward(std::span<const tensor* const> in) override {
    PELTA_CHECK(in.size() == 2);
    const tensor& logits = *in[0];
    const tensor& labels = *in[1];
    PELTA_CHECK_MSG(logits.ndim() == 2, "cross_entropy logits " << to_string(logits.shape()));
    const std::int64_t b = logits.size(0), c = logits.size(1);
    PELTA_CHECK_MSG(labels.numel() == b, "cross_entropy labels " << to_string(labels.shape()));

    softmax_ = tensor{logits.shape()};
    double loss = 0.0;
    for (std::int64_t n = 0; n < b; ++n) {
      const std::int64_t y = static_cast<std::int64_t>(labels[n]);
      PELTA_CHECK_MSG(y >= 0 && y < c, "label " << y << " out of range " << c);
      float m = logits.at(n, 0);
      for (std::int64_t j = 1; j < c; ++j) m = std::max(m, logits.at(n, j));
      double z = 0.0;
      for (std::int64_t j = 0; j < c; ++j) z += std::exp(logits.at(n, j) - m);
      const double logz = m + std::log(z);
      for (std::int64_t j = 0; j < c; ++j)
        softmax_.at(n, j) = static_cast<float>(std::exp(logits.at(n, j) - logz));
      loss += logz - logits.at(n, y);
    }
    return tensor::scalar(static_cast<float>(loss / static_cast<double>(b)));
  }

  std::vector<tensor> backward(const tensor& g, std::span<const tensor* const> in,
                               const tensor&) const override {
    const tensor& logits = *in[0];
    const tensor& labels = *in[1];
    const std::int64_t b = logits.size(0), c = logits.size(1);
    const float scale = g.item() / static_cast<float>(b);
    tensor dl{logits.shape()};
    for (std::int64_t n = 0; n < b; ++n) {
      const std::int64_t y = static_cast<std::int64_t>(labels[n]);
      for (std::int64_t j = 0; j < c; ++j)
        dl.at(n, j) = scale * (softmax_.at(n, j) - (j == y ? 1.0f : 0.0f));
    }
    return {std::move(dl), tensor{labels.shape()}};
  }

private:
  tensor softmax_;
};

class linear_op final : public op {
public:
  explicit linear_op(bool with_bias) : with_bias_{with_bias} {}
  std::string_view name() const override { return "linear"; }

  tensor forward(std::span<const tensor* const> in) override {
    PELTA_CHECK(in.size() == (with_bias_ ? 3u : 2u));
    const tensor& x = *in[0];
    const tensor& w = *in[1];
    PELTA_CHECK_MSG(x.ndim() == 2 && w.ndim() == 2 && x.size(1) == w.size(0),
                    "linear shapes " << to_string(x.shape()) << " x " << to_string(w.shape()));
    tensor out = ops::matmul(x, w);
    if (with_bias_) {
      const tensor& bias = *in[2];
      PELTA_CHECK(bias.numel() == w.size(1));
      for (std::int64_t r = 0; r < out.size(0); ++r)
        for (std::int64_t c = 0; c < out.size(1); ++c) out.at(r, c) += bias[c];
    }
    return out;
  }

  std::vector<tensor> backward(const tensor& g, std::span<const tensor* const> in,
                               const tensor&) const override {
    const tensor& x = *in[0];
    const tensor& w = *in[1];
    std::vector<tensor> grads;
    grads.push_back(ops::matmul(g, ops::transpose2d(w)));
    grads.push_back(ops::matmul(ops::transpose2d(x), g));
    if (with_bias_) {
      tensor gb{shape_t{w.size(1)}};
      for (std::int64_t r = 0; r < g.size(0); ++r)
        for (std::int64_t c = 0; c < g.size(1); ++c) gb[c] += g.at(r, c);
      grads.push_back(std::move(gb));
    }
    return grads;
  }

private:
  bool with_bias_;
};

}  // namespace

op_ptr make_cross_entropy() { return std::make_unique<cross_entropy_op>(); }
op_ptr make_linear(bool with_bias) { return std::make_unique<linear_op>(with_bias); }

}  // namespace pelta::ad
