// Spatial ops: convolution, pooling, ViT patch extraction.
#pragma once

#include "autodiff/op.h"

namespace pelta::ad {

/// 2-d convolution. Parents: (x [B,C,H,W], W [OC,C,KH,KW]) or
/// (x, W, b [OC]) when with_bias. The zero `pad` models the padding
/// operation the paper folds into the first shielded BiT layer.
op_ptr make_conv2d(std::int64_t stride, std::int64_t pad, bool with_bias);

/// Introspection for the quantizing compile pass (nn/compile): recover a
/// conv2d instance's geometry (bias presence follows from its parent count).
/// Returns false for any other op.
bool conv2d_geometry_of(const op& o, std::int64_t* stride, std::int64_t* pad);

/// 2x2 max pooling, stride 2. Parent: (x).
op_ptr make_maxpool2x2();

/// Global average pooling [B,C,H,W] -> [B,C]. Parent: (x).
op_ptr make_global_avgpool();

/// ViT patch extraction: [B,C,H,W] -> [B, T, P] with T = (H/ps)*(W/ps)
/// patches of P = C*ps*ps features, row-major patch order. Parent: (x).
op_ptr make_patchify(std::int64_t patch_size);

/// Per-token linear map: [B,T,P] x [P,D] (+ [D]) -> [B,T,D]. Parents:
/// (x, W) or (x, W, b). Used for the ViT embedding projection E and the
/// q/k/v/output projections.
op_ptr make_token_linear(bool with_bias);

}  // namespace pelta::ad
