#include "autodiff/ops_norm.h"

#include <cmath>

#include "core/sync.h"

namespace pelta::ad {

namespace {

// Running-statistics updates may race under data-parallel training shards;
// a single global guard keeps them consistent (update order across shards
// is unspecified, like distributed batch norm). The guarded data are the
// caller-owned bn_stats tensors, not members of this TU, so there is no
// field to PELTA_GUARDED_BY — the capability is documented here and held
// around every running-stats read-modify-write below.
sync::mutex& bn_stats_mutex() {
  static sync::mutex mu;
  return mu;
}

}  // namespace

namespace {

// Shared helper: normalize `rows` rows of length `len` laid out contiguously;
// writes xhat and per-row inv-sigma. Used by layernorm and weight-std.
void normalize_rows(const float* x, float* xhat, float* inv_sigma, std::int64_t rows,
                    std::int64_t len, float eps) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * len;
    float* hr = xhat + r * len;
    double mu = 0.0;
    for (std::int64_t i = 0; i < len; ++i) mu += xr[i];
    mu /= static_cast<double>(len);
    double var = 0.0;
    for (std::int64_t i = 0; i < len; ++i) {
      const double d = xr[i] - mu;
      var += d * d;
    }
    var /= static_cast<double>(len);
    const float is = 1.0f / std::sqrt(static_cast<float>(var) + eps);
    inv_sigma[r] = is;
    for (std::int64_t i = 0; i < len; ++i)
      hr[i] = (xr[i] - static_cast<float>(mu)) * is;
  }
}

// Backward of row normalization: given s = upstream grad w.r.t. xhat,
// dx = inv_sigma * (s - mean(s) - xhat * mean(s*xhat)).
void normalize_rows_backward(const float* s, const float* xhat, const float* inv_sigma, float* dx,
                             std::int64_t rows, std::int64_t len) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* sr = s + r * len;
    const float* hr = xhat + r * len;
    float* dr = dx + r * len;
    double ms = 0.0, msh = 0.0;
    for (std::int64_t i = 0; i < len; ++i) {
      ms += sr[i];
      msh += static_cast<double>(sr[i]) * hr[i];
    }
    ms /= static_cast<double>(len);
    msh /= static_cast<double>(len);
    for (std::int64_t i = 0; i < len; ++i)
      dr[i] = inv_sigma[r] *
              (sr[i] - static_cast<float>(ms) - hr[i] * static_cast<float>(msh));
  }
}

class layernorm_op final : public op {
public:
  explicit layernorm_op(float eps) : eps_{eps} {}
  std::string_view name() const override { return "layernorm"; }

  tensor forward(std::span<const tensor* const> in) override {
    PELTA_CHECK(in.size() == 3);
    const tensor& x = *in[0];
    const tensor& gamma = *in[1];
    const tensor& beta = *in[2];
    const std::int64_t d = x.size(-1);
    PELTA_CHECK_MSG(gamma.numel() == d && beta.numel() == d, "layernorm affine shape mismatch");
    const std::int64_t rows = x.numel() / d;
    xhat_ = tensor{x.shape()};
    inv_sigma_ = tensor{shape_t{rows}};
    normalize_rows(x.data().data(), xhat_.data().data(), inv_sigma_.data().data(), rows, d, eps_);
    tensor out{x.shape()};
    auto ph = xhat_.data();
    auto po = out.data();
    auto pg = gamma.data();
    auto pb = beta.data();
    for (std::int64_t r = 0; r < rows; ++r)
      for (std::int64_t i = 0; i < d; ++i)
        po[static_cast<std::size_t>(r * d + i)] =
            ph[static_cast<std::size_t>(r * d + i)] * pg[static_cast<std::size_t>(i)] +
            pb[static_cast<std::size_t>(i)];
    return out;
  }

  std::vector<tensor> backward(const tensor& g, std::span<const tensor* const> in,
                               const tensor&) const override {
    const tensor& x = *in[0];
    const tensor& gamma = *in[1];
    const std::int64_t d = x.size(-1);
    const std::int64_t rows = x.numel() / d;

    // s = g * gamma (grad w.r.t. xhat); dgamma = sum_rows g * xhat; dbeta = sum_rows g.
    tensor s{x.shape()}, dgamma{gamma.shape()}, dbeta{gamma.shape()};
    auto pg = g.data();
    auto pga = gamma.data();
    auto ph = xhat_.data();
    auto ps = s.data();
    for (std::int64_t r = 0; r < rows; ++r)
      for (std::int64_t i = 0; i < d; ++i) {
        const std::size_t idx = static_cast<std::size_t>(r * d + i);
        ps[idx] = pg[idx] * pga[static_cast<std::size_t>(i)];
        dgamma[i] += pg[idx] * ph[idx];
        dbeta[i] += pg[idx];
      }
    tensor dx{x.shape()};
    normalize_rows_backward(s.data().data(), xhat_.data().data(), inv_sigma_.data().data(),
                            dx.data().data(), rows, d);
    return {std::move(dx), std::move(dgamma), std::move(dbeta)};
  }

private:
  float eps_;
  tensor xhat_;       // cached forward state
  tensor inv_sigma_;  // per-row 1/sigma
};

class batchnorm2d_op final : public op {
public:
  batchnorm2d_op(batchnorm_stats* stats, norm_mode mode, float momentum, float eps)
      : stats_{stats}, mode_{mode}, momentum_{momentum}, eps_{eps} {
    PELTA_CHECK_MSG(stats != nullptr, "batchnorm requires a stats buffer");
  }
  std::string_view name() const override { return "batchnorm2d"; }

  const batchnorm_stats* stats() const { return stats_; }
  norm_mode mode() const { return mode_; }
  float eps() const { return eps_; }

  tensor forward(std::span<const tensor* const> in) override {
    PELTA_CHECK(in.size() == 3);
    const tensor& x = *in[0];
    const tensor& gamma = *in[1];
    const tensor& beta = *in[2];
    PELTA_CHECK_MSG(x.ndim() == 4, "batchnorm2d input " << to_string(x.shape()));
    const std::int64_t b = x.size(0), c = x.size(1), hw = x.size(2) * x.size(3);
    PELTA_CHECK(gamma.numel() == c && beta.numel() == c);
    PELTA_CHECK(stats_->running_mean.numel() == c && stats_->running_var.numel() == c);

    mean_ = tensor{shape_t{c}};
    inv_sigma_ = tensor{shape_t{c}};
    if (mode_ == norm_mode::train) {
      const double n = static_cast<double>(b * hw);
      tensor batch_var{shape_t{c}};
      for (std::int64_t ch = 0; ch < c; ++ch) {
        double mu = 0.0;
        for (std::int64_t nb = 0; nb < b; ++nb) {
          const float* base = x.data().data() + (nb * c + ch) * hw;
          for (std::int64_t s = 0; s < hw; ++s) mu += base[s];
        }
        mu /= n;
        double var = 0.0;
        for (std::int64_t nb = 0; nb < b; ++nb) {
          const float* base = x.data().data() + (nb * c + ch) * hw;
          for (std::int64_t s = 0; s < hw; ++s) {
            const double d = base[s] - mu;
            var += d * d;
          }
        }
        var /= n;
        mean_[ch] = static_cast<float>(mu);
        batch_var[ch] = static_cast<float>(var);
        inv_sigma_[ch] = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
      }
      {
        const sync::lock_guard lock{bn_stats_mutex()};
        for (std::int64_t ch = 0; ch < c; ++ch) {
          stats_->running_mean[ch] =
              (1.0f - momentum_) * stats_->running_mean[ch] + momentum_ * mean_[ch];
          stats_->running_var[ch] =
              (1.0f - momentum_) * stats_->running_var[ch] + momentum_ * batch_var[ch];
        }
      }
    } else {
      for (std::int64_t ch = 0; ch < c; ++ch) {
        mean_[ch] = stats_->running_mean[ch];
        inv_sigma_[ch] = 1.0f / std::sqrt(stats_->running_var[ch] + eps_);
      }
    }

    xhat_ = tensor{x.shape()};
    tensor out{x.shape()};
    for (std::int64_t nb = 0; nb < b; ++nb)
      for (std::int64_t ch = 0; ch < c; ++ch) {
        const float* base = x.data().data() + (nb * c + ch) * hw;
        float* hb = xhat_.data().data() + (nb * c + ch) * hw;
        float* ob = out.data().data() + (nb * c + ch) * hw;
        const float mu = mean_[ch], is = inv_sigma_[ch], ga = gamma[ch], be = beta[ch];
        for (std::int64_t s = 0; s < hw; ++s) {
          hb[s] = (base[s] - mu) * is;
          ob[s] = hb[s] * ga + be;
        }
      }
    return out;
  }

  std::vector<tensor> backward(const tensor& g, std::span<const tensor* const> in,
                               const tensor&) const override {
    const tensor& x = *in[0];
    const tensor& gamma = *in[1];
    const std::int64_t b = x.size(0), c = x.size(1), hw = x.size(2) * x.size(3);
    tensor dx{x.shape()}, dgamma{gamma.shape()}, dbeta{gamma.shape()};

    for (std::int64_t ch = 0; ch < c; ++ch) {
      double sum_g = 0.0, sum_gh = 0.0;
      for (std::int64_t nb = 0; nb < b; ++nb) {
        const float* gb = g.data().data() + (nb * c + ch) * hw;
        const float* hb = xhat_.data().data() + (nb * c + ch) * hw;
        for (std::int64_t s = 0; s < hw; ++s) {
          sum_g += gb[s];
          sum_gh += static_cast<double>(gb[s]) * hb[s];
        }
      }
      dbeta[ch] = static_cast<float>(sum_g);
      dgamma[ch] = static_cast<float>(sum_gh);

      const float ga = gamma[ch], is = inv_sigma_[ch];
      if (mode_ == norm_mode::train) {
        const double n = static_cast<double>(b * hw);
        const float mg = static_cast<float>(sum_g / n);
        const float mgh = static_cast<float>(sum_gh / n);
        for (std::int64_t nb = 0; nb < b; ++nb) {
          const float* gb = g.data().data() + (nb * c + ch) * hw;
          const float* hb = xhat_.data().data() + (nb * c + ch) * hw;
          float* db = dx.data().data() + (nb * c + ch) * hw;
          for (std::int64_t s = 0; s < hw; ++s)
            db[s] = ga * is * (gb[s] - mg - hb[s] * mgh);
        }
      } else {
        // Eval mode: statistics are constants; the transform is affine.
        for (std::int64_t nb = 0; nb < b; ++nb) {
          const float* gb = g.data().data() + (nb * c + ch) * hw;
          float* db = dx.data().data() + (nb * c + ch) * hw;
          for (std::int64_t s = 0; s < hw; ++s) db[s] = ga * is * gb[s];
        }
      }
    }
    return {std::move(dx), std::move(dgamma), std::move(dbeta)};
  }

private:
  batchnorm_stats* stats_;  // non-owning; layer outlives the graph
  norm_mode mode_;
  float momentum_;
  float eps_;
  tensor mean_, inv_sigma_, xhat_;
};

class groupnorm_op final : public op {
public:
  groupnorm_op(std::int64_t groups, float eps) : groups_{groups}, eps_{eps} {
    PELTA_CHECK(groups >= 1);
  }
  std::string_view name() const override { return "groupnorm"; }

  tensor forward(std::span<const tensor* const> in) override {
    PELTA_CHECK(in.size() == 3);
    const tensor& x = *in[0];
    const tensor& gamma = *in[1];
    const tensor& beta = *in[2];
    PELTA_CHECK(x.ndim() == 4);
    const std::int64_t b = x.size(0), c = x.size(1), hw = x.size(2) * x.size(3);
    PELTA_CHECK_MSG(c % groups_ == 0, "groupnorm: " << c << " channels not divisible by "
                                                    << groups_ << " groups");
    PELTA_CHECK(gamma.numel() == c && beta.numel() == c);
    const std::int64_t cg = c / groups_;    // channels per group
    const std::int64_t len = cg * hw;       // elements per (sample, group)
    const std::int64_t rows = b * groups_;  // groups are contiguous in NCHW

    xhat_ = tensor{x.shape()};
    inv_sigma_ = tensor{shape_t{rows}};
    normalize_rows(x.data().data(), xhat_.data().data(), inv_sigma_.data().data(), rows, len,
                   eps_);

    tensor out{x.shape()};
    for (std::int64_t nb = 0; nb < b; ++nb)
      for (std::int64_t ch = 0; ch < c; ++ch) {
        const float* hb = xhat_.data().data() + (nb * c + ch) * hw;
        float* ob = out.data().data() + (nb * c + ch) * hw;
        const float ga = gamma[ch], be = beta[ch];
        for (std::int64_t s = 0; s < hw; ++s) ob[s] = hb[s] * ga + be;
      }
    return out;
  }

  std::vector<tensor> backward(const tensor& g, std::span<const tensor* const> in,
                               const tensor&) const override {
    const tensor& x = *in[0];
    const tensor& gamma = *in[1];
    const std::int64_t b = x.size(0), c = x.size(1), hw = x.size(2) * x.size(3);
    const std::int64_t cg = c / groups_;
    const std::int64_t len = cg * hw;
    const std::int64_t rows = b * groups_;

    tensor s{x.shape()}, dgamma{gamma.shape()}, dbeta{gamma.shape()};
    for (std::int64_t nb = 0; nb < b; ++nb)
      for (std::int64_t ch = 0; ch < c; ++ch) {
        const float* gb = g.data().data() + (nb * c + ch) * hw;
        const float* hb = xhat_.data().data() + (nb * c + ch) * hw;
        float* sb = s.data().data() + (nb * c + ch) * hw;
        const float ga = gamma[ch];
        double dg = 0.0, db = 0.0;
        for (std::int64_t i = 0; i < hw; ++i) {
          sb[i] = gb[i] * ga;
          dg += static_cast<double>(gb[i]) * hb[i];
          db += gb[i];
        }
        dgamma[ch] += static_cast<float>(dg);
        dbeta[ch] += static_cast<float>(db);
      }

    tensor dx{x.shape()};
    normalize_rows_backward(s.data().data(), xhat_.data().data(), inv_sigma_.data().data(),
                            dx.data().data(), rows, len);
    return {std::move(dx), std::move(dgamma), std::move(dbeta)};
  }

private:
  std::int64_t groups_;
  float eps_;
  tensor xhat_, inv_sigma_;
};

class weight_standardize_op final : public op {
public:
  explicit weight_standardize_op(float eps) : eps_{eps} {}
  std::string_view name() const override { return "weight_standardize"; }

  tensor forward(std::span<const tensor* const> in) override {
    PELTA_CHECK(in.size() == 1);
    const tensor& w = *in[0];
    PELTA_CHECK_MSG(w.ndim() == 4, "weight_standardize on " << to_string(w.shape()));
    const std::int64_t oc = w.size(0);
    const std::int64_t len = w.numel() / oc;
    xhat_ = tensor{w.shape()};
    inv_sigma_ = tensor{shape_t{oc}};
    normalize_rows(w.data().data(), xhat_.data().data(), inv_sigma_.data().data(), oc, len, eps_);
    return xhat_;
  }

  std::vector<tensor> backward(const tensor& g, std::span<const tensor* const> in,
                               const tensor&) const override {
    const tensor& w = *in[0];
    const std::int64_t oc = w.size(0);
    const std::int64_t len = w.numel() / oc;
    tensor dw{w.shape()};
    normalize_rows_backward(g.data().data(), xhat_.data().data(), inv_sigma_.data().data(),
                            dw.data().data(), oc, len);
    return {std::move(dw)};
  }

private:
  float eps_;
  tensor xhat_, inv_sigma_;
};

}  // namespace

op_ptr make_layernorm_lastdim(float eps) { return std::make_unique<layernorm_op>(eps); }
op_ptr make_batchnorm2d(batchnorm_stats* stats, norm_mode mode, float momentum, float eps) {
  return std::make_unique<batchnorm2d_op>(stats, mode, momentum, eps);
}

bool batchnorm_params_of(const op& o, const batchnorm_stats** stats, float* eps, bool* is_eval) {
  const auto* bn = dynamic_cast<const batchnorm2d_op*>(&o);
  if (bn == nullptr) return false;
  *stats = bn->stats();
  *eps = bn->eps();
  *is_eval = bn->mode() == norm_mode::eval;
  return true;
}
op_ptr make_groupnorm(std::int64_t groups, float eps) {
  return std::make_unique<groupnorm_op>(groups, eps);
}
op_ptr make_weight_standardize(float eps) { return std::make_unique<weight_standardize_op>(eps); }

}  // namespace pelta::ad
