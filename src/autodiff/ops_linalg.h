// Linear-algebra and tensor-layout ops.
#pragma once

#include "autodiff/op.h"
#include "tensor/shape.h"

namespace pelta::ad {

/// [M,K] x [K,N] -> [M,N].
op_ptr make_matmul();

/// Batched [B,M,K] x [B,K,N] -> [B,M,N] (attention scores / context).
op_ptr make_bmm();

/// [B,M,N] -> [B,N,M].
op_ptr make_transpose_last2();

/// View with a new shape (numel preserved).
op_ptr make_reshape(shape_t new_shape);

/// Target shape of a reshape op instance, nullptr for any other op. The op
/// classes live in this TU's anonymous namespace, so introspection for the
/// quantizing compile pass (nn/compile) is exported here instead of via
/// header-visible types.
const shape_t* reshape_shape_of(const op& o);

/// x[..., start : start+len] over the last dimension (per-head split).
op_ptr make_slice_lastdim(std::int64_t start, std::int64_t len);

/// Concatenate k parents along the last dimension (head merge).
op_ptr make_concat_lastdim();

/// Parents (token [D], tokens [B,T,D]) -> [B,T+1,D]; the learnable class
/// token is broadcast across the batch and prepended as row 0 (ViT).
op_ptr make_prepend_token();

/// [B,T,D] -> [B,D], reading row `t` (class-token readout).
op_ptr make_slice_row(std::int64_t t);

}  // namespace pelta::ad
