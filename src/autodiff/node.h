// Computational-graph node, mirroring the paper's G = ⟨n, l, E, u, f⟩:
// leaf vertices are inputs/parameters/constants, non-leaf vertices carry a
// differentiable transform f_i and its cached value u_i and adjoint dL/du_i.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "autodiff/op.h"
#include "tensor/tensor.h"

namespace pelta::ad {

using node_id = std::int32_t;
inline constexpr node_id invalid_node = -1;

enum class node_kind : std::uint8_t {
  input,      ///< model input leaf (the attacker's trainable x)
  parameter,  ///< trained weight/bias leaf
  constant,   ///< non-differentiable leaf (labels, fixed masks)
  transform,  ///< non-leaf vertex computed by an op
};

/// Persistent trainable parameter owned by an nn layer; graphs reference it.
struct parameter {
  std::string name;
  tensor value;
  tensor grad;  ///< accumulated by graph::accumulate_param_grads

  explicit parameter(std::string n, tensor v)
      : name{std::move(n)}, value{std::move(v)}, grad{value.shape()} {}
};

struct node {
  node_id id = invalid_node;
  node_kind kind = node_kind::constant;
  std::string tag;                 ///< model-assigned label, e.g. "vit.patch_proj"
  std::vector<node_id> parents;    ///< edge set E, in op-argument order
  op_ptr oper;                     ///< null for leaves
  parameter* param = nullptr;      ///< backing parameter for parameter leaves
  tensor value;                    ///< u_i
  tensor adjoint;                  ///< dL/du_i (valid iff has_adjoint)
  bool has_adjoint = false;
  bool input_dependent = false;    ///< the model input flows into this vertex
  bool requires_grad = false;      ///< adjoint needed (input/param ancestry)
};

}  // namespace pelta::ad
