// Finite-difference utilities used by the test suite to validate every
// op's backward pass and the PELTA Jacobian semantics.
#pragma once

#include <functional>

#include "tensor/tensor.h"

namespace pelta::ad {

/// Central-difference gradient of a scalar function at x.
tensor numeric_grad(const std::function<float(const tensor&)>& f, const tensor& x,
                    float eps = 1e-3f);

/// Central-difference dense Jacobian [out_numel, in_numel] of a
/// tensor-valued function at x — the materialized form of the paper's local
/// Jacobian J_{j→i} for small graphs.
tensor numeric_jacobian(const std::function<tensor(const tensor&)>& f, const tensor& x,
                        float eps = 1e-3f);

/// max_i |a_i - b_i| / max(|a_i|, |b_i|, floor): symmetric relative error.
float max_rel_error(const tensor& a, const tensor& b, float floor = 1e-2f);

}  // namespace pelta::ad
