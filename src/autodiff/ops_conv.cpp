#include "autodiff/ops_conv.h"

#include "tensor/conv.h"
#include "tensor/ops.h"

namespace pelta::ad {

namespace {

class conv2d_op final : public op {
public:
  conv2d_op(std::int64_t stride, std::int64_t pad, bool with_bias)
      : stride_{stride}, pad_{pad}, with_bias_{with_bias} {
    PELTA_CHECK(stride >= 1 && pad >= 0);
  }
  std::string_view name() const override { return "conv2d"; }

  tensor forward(std::span<const tensor* const> in) override {
    PELTA_CHECK(in.size() == (with_bias_ ? 3u : 2u));
    static const tensor no_bias{shape_t{0}};
    return ops::conv2d(*in[0], *in[1], with_bias_ ? *in[2] : no_bias, stride_, pad_);
  }

  std::vector<tensor> backward(const tensor& g, std::span<const tensor* const> in,
                               const tensor&) const override {
    std::vector<tensor> grads;
    grads.push_back(ops::conv2d_backward_input(g, *in[1], stride_, pad_, in[0]->shape()));
    grads.push_back(ops::conv2d_backward_weight(g, *in[0], stride_, pad_, in[1]->shape()));
    if (with_bias_) grads.push_back(ops::conv2d_backward_bias(g));
    return grads;
  }

  std::int64_t stride() const { return stride_; }
  std::int64_t pad() const { return pad_; }

private:
  std::int64_t stride_;
  std::int64_t pad_;
  bool with_bias_;
};

class maxpool_op final : public op {
public:
  std::string_view name() const override { return "maxpool2x2"; }

  tensor forward(std::span<const tensor* const> in) override {
    PELTA_CHECK(in.size() == 1);
    auto r = ops::maxpool2x2(*in[0]);
    indices_ = std::move(r.indices);
    return std::move(r.output);
  }

  std::vector<tensor> backward(const tensor& g, std::span<const tensor* const> in,
                               const tensor&) const override {
    return {ops::maxpool2x2_backward(g, indices_, in[0]->shape())};
  }

private:
  tensor indices_;
};

class global_avgpool_op final : public op {
public:
  std::string_view name() const override { return "global_avgpool"; }

  tensor forward(std::span<const tensor* const> in) override {
    PELTA_CHECK(in.size() == 1);
    return ops::global_avgpool(*in[0]);
  }

  std::vector<tensor> backward(const tensor& g, std::span<const tensor* const> in,
                               const tensor&) const override {
    return {ops::global_avgpool_backward(g, in[0]->shape())};
  }
};

class patchify_op final : public op {
public:
  explicit patchify_op(std::int64_t ps) : ps_{ps} { PELTA_CHECK(ps >= 1); }
  std::string_view name() const override { return "patchify"; }

  tensor forward(std::span<const tensor* const> in) override {
    PELTA_CHECK(in.size() == 1);
    const tensor& x = *in[0];
    PELTA_CHECK_MSG(x.ndim() == 4, "patchify input " << to_string(x.shape()));
    const std::int64_t b = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
    PELTA_CHECK_MSG(h % ps_ == 0 && w % ps_ == 0,
                    "patch size " << ps_ << " does not divide " << to_string(x.shape()));
    const std::int64_t ph = h / ps_, pw = w / ps_;
    const std::int64_t t = ph * pw, p = c * ps_ * ps_;
    tensor out{shape_t{b, t, p}};
    for (std::int64_t n = 0; n < b; ++n)
      for (std::int64_t py = 0; py < ph; ++py)
        for (std::int64_t px = 0; px < pw; ++px) {
          const std::int64_t ti = py * pw + px;
          for (std::int64_t ci = 0; ci < c; ++ci)
            for (std::int64_t dy = 0; dy < ps_; ++dy)
              for (std::int64_t dx = 0; dx < ps_; ++dx)
                out.at(n, ti, (ci * ps_ + dy) * ps_ + dx) =
                    x.at(n, ci, py * ps_ + dy, px * ps_ + dx);
        }
    return out;
  }

  std::vector<tensor> backward(const tensor& g, std::span<const tensor* const> in,
                               const tensor&) const override {
    const tensor& x = *in[0];
    const std::int64_t b = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
    const std::int64_t ph = h / ps_, pw = w / ps_;
    tensor gx{x.shape()};
    for (std::int64_t n = 0; n < b; ++n)
      for (std::int64_t py = 0; py < ph; ++py)
        for (std::int64_t px = 0; px < pw; ++px) {
          const std::int64_t ti = py * pw + px;
          for (std::int64_t ci = 0; ci < c; ++ci)
            for (std::int64_t dy = 0; dy < ps_; ++dy)
              for (std::int64_t dx = 0; dx < ps_; ++dx)
                gx.at(n, ci, py * ps_ + dy, px * ps_ + dx) =
                    g.at(n, ti, (ci * ps_ + dy) * ps_ + dx);
        }
    return {std::move(gx)};
  }

private:
  std::int64_t ps_;
};

// [B,T,P] x [P,D] (+b) -> [B,T,D]; implemented by flattening tokens to rows.
class token_linear_op final : public op {
public:
  explicit token_linear_op(bool with_bias) : with_bias_{with_bias} {}
  std::string_view name() const override { return "token_linear"; }

  tensor forward(std::span<const tensor* const> in) override {
    PELTA_CHECK(in.size() == (with_bias_ ? 3u : 2u));
    const tensor& x = *in[0];
    const tensor& w = *in[1];
    PELTA_CHECK_MSG(x.ndim() == 3 && w.ndim() == 2 && x.size(2) == w.size(0),
                    "token_linear shapes " << to_string(x.shape()) << " x " << to_string(w.shape()));
    const std::int64_t b = x.size(0), t = x.size(1), d = w.size(1);
    tensor flat = x.reshape({b * t, x.size(2)});
    tensor out = ops::matmul(flat, w);
    if (with_bias_) {
      const tensor& bias = *in[2];
      PELTA_CHECK(bias.numel() == d);
      for (std::int64_t r = 0; r < b * t; ++r)
        for (std::int64_t c = 0; c < d; ++c) out.at(r, c) += bias[c];
    }
    return out.reshape({b, t, d});
  }

  std::vector<tensor> backward(const tensor& g, std::span<const tensor* const> in,
                               const tensor&) const override {
    const tensor& x = *in[0];
    const tensor& w = *in[1];
    const std::int64_t b = x.size(0), t = x.size(1), p = x.size(2), d = w.size(1);
    tensor g2 = g.reshape({b * t, d});
    tensor x2 = x.reshape({b * t, p});
    std::vector<tensor> grads;
    grads.push_back(ops::matmul(g2, ops::transpose2d(w)).reshape(x.shape()));
    grads.push_back(ops::matmul(ops::transpose2d(x2), g2));
    if (with_bias_) {
      tensor gb{shape_t{d}};
      for (std::int64_t r = 0; r < b * t; ++r)
        for (std::int64_t c = 0; c < d; ++c) gb[c] += g2.at(r, c);
      grads.push_back(std::move(gb));
    }
    return grads;
  }

private:
  bool with_bias_;
};

}  // namespace

op_ptr make_conv2d(std::int64_t stride, std::int64_t pad, bool with_bias) {
  return std::make_unique<conv2d_op>(stride, pad, with_bias);
}

bool conv2d_geometry_of(const op& o, std::int64_t* stride, std::int64_t* pad) {
  const auto* c = dynamic_cast<const conv2d_op*>(&o);
  if (c == nullptr) return false;
  *stride = c->stride();
  *pad = c->pad();
  return true;
}
op_ptr make_maxpool2x2() { return std::make_unique<maxpool_op>(); }
op_ptr make_global_avgpool() { return std::make_unique<global_avgpool_op>(); }
op_ptr make_patchify(std::int64_t patch_size) { return std::make_unique<patchify_op>(patch_size); }
op_ptr make_token_linear(bool with_bias) { return std::make_unique<token_linear_op>(with_bias); }

}  // namespace pelta::ad
