#include "autodiff/gradcheck.h"

#include <cmath>

namespace pelta::ad {

tensor numeric_grad(const std::function<float(const tensor&)>& f, const tensor& x, float eps) {
  tensor g{x.shape()};
  tensor probe = x;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float orig = probe[i];
    probe[i] = orig + eps;
    const float hi = f(probe);
    probe[i] = orig - eps;
    const float lo = f(probe);
    probe[i] = orig;
    g[i] = (hi - lo) / (2.0f * eps);
  }
  return g;
}

tensor numeric_jacobian(const std::function<tensor(const tensor&)>& f, const tensor& x,
                        float eps) {
  const tensor base = f(x);
  const std::int64_t m = base.numel(), n = x.numel();
  tensor jac{shape_t{m, n}};
  tensor probe = x;
  for (std::int64_t j = 0; j < n; ++j) {
    const float orig = probe[j];
    probe[j] = orig + eps;
    const tensor hi = f(probe);
    probe[j] = orig - eps;
    const tensor lo = f(probe);
    probe[j] = orig;
    PELTA_CHECK(hi.numel() == m && lo.numel() == m);
    for (std::int64_t i = 0; i < m; ++i) jac.at(i, j) = (hi[i] - lo[i]) / (2.0f * eps);
  }
  return jac;
}

float max_rel_error(const tensor& a, const tensor& b, float floor) {
  PELTA_CHECK_MSG(a.same_shape(b), "max_rel_error shape mismatch");
  float worst = 0.0f;
  auto pa = a.data();
  auto pb = b.data();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const float denom = std::max({std::fabs(pa[i]), std::fabs(pb[i]), floor});
    worst = std::max(worst, std::fabs(pa[i] - pb[i]) / denom);
  }
  return worst;
}

}  // namespace pelta::ad
