#include "autodiff/ops_linalg.h"

#include "tensor/ops.h"

namespace pelta::ad {

namespace {

class matmul_op final : public op {
public:
  std::string_view name() const override { return "matmul"; }

  tensor forward(std::span<const tensor* const> in) override {
    PELTA_CHECK(in.size() == 2);
    return ops::matmul(*in[0], *in[1]);
  }

  std::vector<tensor> backward(const tensor& g, std::span<const tensor* const> in,
                               const tensor&) const override {
    // dA = g Bᵀ ; dB = Aᵀ g
    return {ops::matmul(g, ops::transpose2d(*in[1])), ops::matmul(ops::transpose2d(*in[0]), g)};
  }
};

class bmm_op final : public op {
public:
  std::string_view name() const override { return "bmm"; }

  tensor forward(std::span<const tensor* const> in) override {
    PELTA_CHECK(in.size() == 2);
    return ops::bmm(*in[0], *in[1]);
  }

  std::vector<tensor> backward(const tensor& g, std::span<const tensor* const> in,
                               const tensor&) const override {
    return {ops::bmm(g, ops::transpose_last2(*in[1])), ops::bmm(ops::transpose_last2(*in[0]), g)};
  }
};

class transpose_last2_op final : public op {
public:
  std::string_view name() const override { return "transpose"; }

  tensor forward(std::span<const tensor* const> in) override {
    PELTA_CHECK(in.size() == 1);
    return ops::transpose_last2(*in[0]);
  }

  std::vector<tensor> backward(const tensor& g, std::span<const tensor* const>,
                               const tensor&) const override {
    return {ops::transpose_last2(g)};
  }
};

class reshape_op final : public op {
public:
  explicit reshape_op(shape_t s) : new_shape_{std::move(s)} {}
  std::string_view name() const override { return "reshape"; }

  tensor forward(std::span<const tensor* const> in) override {
    PELTA_CHECK(in.size() == 1);
    return in[0]->reshape(new_shape_);
  }

  std::vector<tensor> backward(const tensor& g, std::span<const tensor* const> in,
                               const tensor&) const override {
    return {g.reshape(in[0]->shape())};
  }

  const shape_t& target_shape() const { return new_shape_; }

private:
  shape_t new_shape_;
};

class slice_lastdim_op final : public op {
public:
  slice_lastdim_op(std::int64_t start, std::int64_t len) : start_{start}, len_{len} {
    PELTA_CHECK(start >= 0 && len > 0);
  }
  std::string_view name() const override { return "slice_lastdim"; }

  tensor forward(std::span<const tensor* const> in) override {
    PELTA_CHECK(in.size() == 1);
    const tensor& x = *in[0];
    const std::int64_t last = x.size(-1);
    PELTA_CHECK_MSG(start_ + len_ <= last, "slice [" << start_ << ", " << start_ + len_
                                                     << ") exceeds last dim " << last);
    shape_t os = x.shape();
    os.back() = len_;
    tensor out{os};
    const std::int64_t rows = x.numel() / last;
    auto px = x.data();
    auto po = out.data();
    for (std::int64_t r = 0; r < rows; ++r)
      for (std::int64_t c = 0; c < len_; ++c)
        po[static_cast<std::size_t>(r * len_ + c)] =
            px[static_cast<std::size_t>(r * last + start_ + c)];
    return out;
  }

  std::vector<tensor> backward(const tensor& g, std::span<const tensor* const> in,
                               const tensor&) const override {
    const tensor& x = *in[0];
    const std::int64_t last = x.size(-1);
    tensor gx{x.shape()};
    const std::int64_t rows = x.numel() / last;
    auto pg = g.data();
    auto po = gx.data();
    for (std::int64_t r = 0; r < rows; ++r)
      for (std::int64_t c = 0; c < len_; ++c)
        po[static_cast<std::size_t>(r * last + start_ + c)] =
            pg[static_cast<std::size_t>(r * len_ + c)];
    return {std::move(gx)};
  }

private:
  std::int64_t start_;
  std::int64_t len_;
};

class concat_lastdim_op final : public op {
public:
  std::string_view name() const override { return "concat_lastdim"; }

  tensor forward(std::span<const tensor* const> in) override {
    PELTA_CHECK_MSG(in.size() >= 2, "concat needs >= 2 parents");
    const shape_t lead{in[0]->shape().begin(), in[0]->shape().end() - 1};
    std::int64_t total_last = 0;
    for (const tensor* t : in) {
      PELTA_CHECK_MSG(shape_t(t->shape().begin(), t->shape().end() - 1) == lead,
                      "concat leading-shape mismatch");
      total_last += t->size(-1);
    }
    shape_t os = in[0]->shape();
    os.back() = total_last;
    tensor out{os};
    const std::int64_t rows = numel_of(lead);
    auto po = out.data();
    std::int64_t col0 = 0;
    for (const tensor* t : in) {
      const std::int64_t last = t->size(-1);
      auto pt = t->data();
      for (std::int64_t r = 0; r < rows; ++r)
        for (std::int64_t c = 0; c < last; ++c)
          po[static_cast<std::size_t>(r * total_last + col0 + c)] =
              pt[static_cast<std::size_t>(r * last + c)];
      col0 += last;
    }
    return out;
  }

  std::vector<tensor> backward(const tensor& g, std::span<const tensor* const> in,
                               const tensor& out) const override {
    const std::int64_t total_last = out.size(-1);
    const std::int64_t rows = out.numel() / total_last;
    std::vector<tensor> grads;
    grads.reserve(in.size());
    auto pg = g.data();
    std::int64_t col0 = 0;
    for (const tensor* t : in) {
      const std::int64_t last = t->size(-1);
      tensor gt{t->shape()};
      auto po = gt.data();
      for (std::int64_t r = 0; r < rows; ++r)
        for (std::int64_t c = 0; c < last; ++c)
          po[static_cast<std::size_t>(r * last + c)] =
              pg[static_cast<std::size_t>(r * total_last + col0 + c)];
      col0 += last;
      grads.push_back(std::move(gt));
    }
    return grads;
  }
};

class prepend_token_op final : public op {
public:
  std::string_view name() const override { return "prepend_token"; }

  tensor forward(std::span<const tensor* const> in) override {
    PELTA_CHECK(in.size() == 2);
    const tensor& token = *in[0];
    const tensor& tokens = *in[1];
    PELTA_CHECK_MSG(token.ndim() == 1 && tokens.ndim() == 3 && token.size(0) == tokens.size(2),
                    "prepend_token shapes " << to_string(token.shape()) << ", "
                                            << to_string(tokens.shape()));
    const std::int64_t b = tokens.size(0), t = tokens.size(1), d = tokens.size(2);
    tensor out{shape_t{b, t + 1, d}};
    for (std::int64_t n = 0; n < b; ++n) {
      for (std::int64_t c = 0; c < d; ++c) out.at(n, 0, c) = token[c];
      for (std::int64_t r = 0; r < t; ++r)
        for (std::int64_t c = 0; c < d; ++c) out.at(n, r + 1, c) = tokens.at(n, r, c);
    }
    return out;
  }

  std::vector<tensor> backward(const tensor& g, std::span<const tensor* const> in,
                               const tensor&) const override {
    const tensor& token = *in[0];
    const tensor& tokens = *in[1];
    const std::int64_t b = tokens.size(0), t = tokens.size(1), d = tokens.size(2);
    tensor g_token{token.shape()};
    tensor g_tokens{tokens.shape()};
    for (std::int64_t n = 0; n < b; ++n) {
      for (std::int64_t c = 0; c < d; ++c) g_token[c] += g.at(n, 0, c);
      for (std::int64_t r = 0; r < t; ++r)
        for (std::int64_t c = 0; c < d; ++c) g_tokens.at(n, r, c) = g.at(n, r + 1, c);
    }
    return {std::move(g_token), std::move(g_tokens)};
  }
};

class slice_row_op final : public op {
public:
  explicit slice_row_op(std::int64_t t) : t_{t} { PELTA_CHECK(t >= 0); }
  std::string_view name() const override { return "slice_row"; }

  tensor forward(std::span<const tensor* const> in) override {
    PELTA_CHECK(in.size() == 1);
    const tensor& x = *in[0];
    PELTA_CHECK_MSG(x.ndim() == 3 && t_ < x.size(1), "slice_row " << t_ << " on "
                                                                  << to_string(x.shape()));
    const std::int64_t b = x.size(0), d = x.size(2);
    tensor out{shape_t{b, d}};
    for (std::int64_t n = 0; n < b; ++n)
      for (std::int64_t c = 0; c < d; ++c) out.at(n, c) = x.at(n, t_, c);
    return out;
  }

  std::vector<tensor> backward(const tensor& g, std::span<const tensor* const> in,
                               const tensor&) const override {
    const tensor& x = *in[0];
    tensor gx{x.shape()};
    const std::int64_t b = x.size(0), d = x.size(2);
    for (std::int64_t n = 0; n < b; ++n)
      for (std::int64_t c = 0; c < d; ++c) gx.at(n, t_, c) = g.at(n, c);
    return {std::move(gx)};
  }

private:
  std::int64_t t_;
};

}  // namespace

op_ptr make_matmul() { return std::make_unique<matmul_op>(); }
op_ptr make_bmm() { return std::make_unique<bmm_op>(); }
op_ptr make_transpose_last2() { return std::make_unique<transpose_last2_op>(); }
op_ptr make_reshape(shape_t new_shape) { return std::make_unique<reshape_op>(std::move(new_shape)); }

const shape_t* reshape_shape_of(const op& o) {
  const auto* r = dynamic_cast<const reshape_op*>(&o);
  return r != nullptr ? &r->target_shape() : nullptr;
}
op_ptr make_slice_lastdim(std::int64_t start, std::int64_t len) {
  return std::make_unique<slice_lastdim_op>(start, len);
}
op_ptr make_concat_lastdim() { return std::make_unique<concat_lastdim_op>(); }
op_ptr make_prepend_token() { return std::make_unique<prepend_token_op>(); }
op_ptr make_slice_row(std::int64_t t) { return std::make_unique<slice_row_op>(t); }

}  // namespace pelta::ad
