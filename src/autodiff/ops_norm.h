// Normalization ops: layer norm, batch norm, group norm, weight
// standardization (the BiT first-layer transform PELTA shields).
#pragma once

#include "autodiff/op.h"

namespace pelta::ad {

/// Layer normalization over the last dimension.
/// Parents: (x [..., D], gamma [D], beta [D]).
op_ptr make_layernorm_lastdim(float eps = 1e-5f);

/// Running statistics owned by a batch-norm layer; the op reads (eval) or
/// updates (train) them across passes. Non-owning pointers — the layer
/// outlives every graph built from it.
struct batchnorm_stats {
  tensor running_mean;  ///< [C]
  tensor running_var;   ///< [C]
};

enum class norm_mode : std::uint8_t { train, eval };

/// 2-d batch normalization over [B, C, H, W], per channel.
/// Parents: (x, gamma [C], beta [C]).
op_ptr make_batchnorm2d(batchnorm_stats* stats, norm_mode mode, float momentum = 0.1f,
                        float eps = 1e-5f);

/// Introspection for the quantizing compile pass (nn/compile): recover a
/// batchnorm2d instance's stats buffer, eps and mode (folding into conv
/// scales/bias is only sound in eval mode, where the op is a fixed
/// per-channel affine). Returns false for any other op.
bool batchnorm_params_of(const op& o, const batchnorm_stats** stats, float* eps, bool* is_eval);

/// Group normalization over [B, C, H, W] with `groups` channel groups
/// (BiT uses GN instead of BN). Parents: (x, gamma [C], beta [C]).
op_ptr make_groupnorm(std::int64_t groups, float eps = 1e-5f);

/// Weight standardization: per-output-filter zero-mean/unit-variance of a
/// conv weight [OC, C, KH, KW] (Big Transfer first conv). Parent: (W).
op_ptr make_weight_standardize(float eps = 1e-5f);

}  // namespace pelta::ad
