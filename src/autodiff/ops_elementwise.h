// Elementwise and activation ops (factory functions returning op_ptr).
#pragma once

#include "autodiff/op.h"

namespace pelta::ad {

/// a + b, identical shapes.
op_ptr make_add();

/// a + b where b's shape is a suffix of a's shape (bias / position-embedding
/// broadcast); backward sums b's gradient over the leading dimensions.
op_ptr make_add_broadcast();

/// a ⊙ b, identical shapes.
op_ptr make_mul();

/// s * a for a compile-time-fixed scalar s.
op_ptr make_scale(float s);

/// s * (a + shift) for fixed scalars — the models' input normalization
/// transform (dataset mean/std folding, e.g. (x - 0.5) * 4).
op_ptr make_affine(float scale, float shift);

/// Introspection for the quantizing compile pass (nn/compile): recover the
/// fixed scalars of a scale/affine op instance (the classes live in this
/// TU's anonymous namespace). Return false for any other op.
bool scale_params_of(const op& o, float* s);
/// True for an affine op; *scale and *shift satisfy y = scale * (x + shift).
bool affine_params_of(const op& o, float* scale, float* shift);

op_ptr make_relu();

/// GELU with the tanh approximation (as in ViT MLP blocks).
op_ptr make_gelu();

/// Softmax over the last dimension (attention probabilities).
op_ptr make_softmax_lastdim();

/// Log-softmax over the last dimension (classification head).
op_ptr make_log_softmax_lastdim();

}  // namespace pelta::ad
