// Differentiable operation interface for the computational graph.
//
// Each graph node u_i = f_i(α_i) owns one op instance. Ops may cache
// forward-pass state (e.g. max-pool indices) for their backward pass, which
// is why instances are per-node and forward() is non-const.
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "tensor/tensor.h"

namespace pelta::ad {

class op {
public:
  virtual ~op() = default;

  /// Stable operation name, e.g. "matmul", "conv2d" — used in graph dumps,
  /// shield reports and the enclave's Jacobian records.
  virtual std::string_view name() const = 0;

  /// Compute u_i = f_i(α_i). `inputs` are the parent values in edge order.
  virtual tensor forward(std::span<const tensor* const> inputs) = 0;

  /// Chain rule: given dL/du_i, return dL/dα_i for every parent (same order
  /// as `inputs`). `output` is the cached forward value of this node.
  virtual std::vector<tensor> backward(const tensor& grad_out,
                                       std::span<const tensor* const> inputs,
                                       const tensor& output) const = 0;
};

using op_ptr = std::unique_ptr<op>;

}  // namespace pelta::ad
