#include "autodiff/ops_elementwise.h"

#include <cmath>

#include "tensor/ops.h"

namespace pelta::ad {

namespace {

class add_op final : public op {
public:
  std::string_view name() const override { return "add"; }

  tensor forward(std::span<const tensor* const> in) override {
    PELTA_CHECK(in.size() == 2);
    return ops::add(*in[0], *in[1]);
  }

  std::vector<tensor> backward(const tensor& g, std::span<const tensor* const>,
                               const tensor&) const override {
    return {g, g};
  }
};

class add_broadcast_op final : public op {
public:
  std::string_view name() const override { return "add_broadcast"; }

  tensor forward(std::span<const tensor* const> in) override {
    PELTA_CHECK(in.size() == 2);
    const tensor& a = *in[0];
    const tensor& b = *in[1];
    PELTA_CHECK_MSG(b.ndim() <= a.ndim(), "broadcast operand rank too high");
    const auto& as = a.shape();
    const auto& bs = b.shape();
    for (std::size_t i = 0; i < bs.size(); ++i)
      PELTA_CHECK_MSG(bs[i] == as[as.size() - bs.size() + i],
                      "broadcast suffix mismatch " << to_string(as) << " vs " << to_string(bs));
    tensor out = a;
    const std::int64_t inner = b.numel();
    const std::int64_t outer = a.numel() / inner;
    auto po = out.data();
    auto pb = b.data();
    for (std::int64_t o = 0; o < outer; ++o)
      for (std::int64_t i = 0; i < inner; ++i)
        po[static_cast<std::size_t>(o * inner + i)] += pb[static_cast<std::size_t>(i)];
    return out;
  }

  std::vector<tensor> backward(const tensor& g, std::span<const tensor* const> in,
                               const tensor&) const override {
    const tensor& b = *in[1];
    tensor gb{b.shape()};
    const std::int64_t inner = b.numel();
    const std::int64_t outer = g.numel() / inner;
    auto pg = g.data();
    auto pgb = gb.data();
    for (std::int64_t o = 0; o < outer; ++o)
      for (std::int64_t i = 0; i < inner; ++i)
        pgb[static_cast<std::size_t>(i)] += pg[static_cast<std::size_t>(o * inner + i)];
    return {g, std::move(gb)};
  }
};

class mul_op final : public op {
public:
  std::string_view name() const override { return "mul"; }

  tensor forward(std::span<const tensor* const> in) override {
    PELTA_CHECK(in.size() == 2);
    return ops::mul(*in[0], *in[1]);
  }

  std::vector<tensor> backward(const tensor& g, std::span<const tensor* const> in,
                               const tensor&) const override {
    return {ops::mul(g, *in[1]), ops::mul(g, *in[0])};
  }
};

class scale_op final : public op {
public:
  explicit scale_op(float s) : s_{s} {}
  std::string_view name() const override { return "scale"; }

  float factor() const { return s_; }

  tensor forward(std::span<const tensor* const> in) override {
    PELTA_CHECK(in.size() == 1);
    return ops::mul_scalar(*in[0], s_);
  }

  std::vector<tensor> backward(const tensor& g, std::span<const tensor* const>,
                               const tensor&) const override {
    return {ops::mul_scalar(g, s_)};
  }

private:
  float s_;
};

class affine_op final : public op {
public:
  affine_op(float scale, float shift) : scale_{scale}, shift_{shift} {}
  std::string_view name() const override { return "affine"; }

  float scale() const { return scale_; }
  float shift() const { return shift_; }

  tensor forward(std::span<const tensor* const> in) override {
    PELTA_CHECK(in.size() == 1);
    return ops::mul_scalar(ops::add_scalar(*in[0], shift_), scale_);
  }

  std::vector<tensor> backward(const tensor& g, std::span<const tensor* const>,
                               const tensor&) const override {
    return {ops::mul_scalar(g, scale_)};
  }

private:
  float scale_;
  float shift_;
};

class relu_op final : public op {
public:
  std::string_view name() const override { return "relu"; }

  tensor forward(std::span<const tensor* const> in) override {
    PELTA_CHECK(in.size() == 1);
    return ops::relu(*in[0]);
  }

  std::vector<tensor> backward(const tensor& g, std::span<const tensor* const> in,
                               const tensor&) const override {
    tensor gx{g.shape()};
    auto px = in[0]->data();
    auto pg = g.data();
    auto po = gx.data();
    for (std::size_t i = 0; i < po.size(); ++i) po[i] = px[i] > 0.0f ? pg[i] : 0.0f;
    return {std::move(gx)};
  }
};

class gelu_op final : public op {
public:
  std::string_view name() const override { return "gelu"; }

  tensor forward(std::span<const tensor* const> in) override {
    PELTA_CHECK(in.size() == 1);
    tensor out{in[0]->shape()};
    auto px = in[0]->data();
    auto po = out.data();
    for (std::size_t i = 0; i < po.size(); ++i) {
      const float x = px[i];
      const float u = k_sqrt_2_over_pi * (x + 0.044715f * x * x * x);
      po[i] = 0.5f * x * (1.0f + std::tanh(u));
    }
    return out;
  }

  std::vector<tensor> backward(const tensor& g, std::span<const tensor* const> in,
                               const tensor&) const override {
    tensor gx{g.shape()};
    auto px = in[0]->data();
    auto pg = g.data();
    auto po = gx.data();
    for (std::size_t i = 0; i < po.size(); ++i) {
      const float x = px[i];
      const float u = k_sqrt_2_over_pi * (x + 0.044715f * x * x * x);
      const float t = std::tanh(u);
      const float du = k_sqrt_2_over_pi * (1.0f + 3.0f * 0.044715f * x * x);
      po[i] = pg[i] * (0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du);
    }
    return {std::move(gx)};
  }

private:
  static constexpr float k_sqrt_2_over_pi = 0.7978845608f;
};

// Softmax over the last dimension, numerically stabilized per row.
class softmax_lastdim_op final : public op {
public:
  std::string_view name() const override { return "softmax"; }

  tensor forward(std::span<const tensor* const> in) override {
    PELTA_CHECK(in.size() == 1);
    const tensor& x = *in[0];
    PELTA_CHECK(x.ndim() >= 1);
    const std::int64_t last = x.size(-1);
    const std::int64_t rows = x.numel() / last;
    tensor out{x.shape()};
    auto px = x.data();
    auto po = out.data();
    for (std::int64_t r = 0; r < rows; ++r) {
      const float* xr = px.data() + r * last;
      float* orow = po.data() + r * last;
      float m = xr[0];
      for (std::int64_t c = 1; c < last; ++c) m = std::max(m, xr[c]);
      double z = 0.0;
      for (std::int64_t c = 0; c < last; ++c) {
        orow[c] = std::exp(xr[c] - m);
        z += orow[c];
      }
      const float inv = static_cast<float>(1.0 / z);
      for (std::int64_t c = 0; c < last; ++c) orow[c] *= inv;
    }
    return out;
  }

  std::vector<tensor> backward(const tensor& g, std::span<const tensor* const>,
                               const tensor& out) const override {
    const std::int64_t last = out.size(-1);
    const std::int64_t rows = out.numel() / last;
    tensor gx{out.shape()};
    auto ps = out.data();
    auto pg = g.data();
    auto po = gx.data();
    for (std::int64_t r = 0; r < rows; ++r) {
      const float* s = ps.data() + r * last;
      const float* gr = pg.data() + r * last;
      float* orow = po.data() + r * last;
      double dot = 0.0;
      for (std::int64_t c = 0; c < last; ++c) dot += static_cast<double>(gr[c]) * s[c];
      for (std::int64_t c = 0; c < last; ++c)
        orow[c] = s[c] * (gr[c] - static_cast<float>(dot));
    }
    return {std::move(gx)};
  }
};

class log_softmax_lastdim_op final : public op {
public:
  std::string_view name() const override { return "log_softmax"; }

  tensor forward(std::span<const tensor* const> in) override {
    PELTA_CHECK(in.size() == 1);
    const tensor& x = *in[0];
    const std::int64_t last = x.size(-1);
    const std::int64_t rows = x.numel() / last;
    tensor out{x.shape()};
    auto px = x.data();
    auto po = out.data();
    for (std::int64_t r = 0; r < rows; ++r) {
      const float* xr = px.data() + r * last;
      float* orow = po.data() + r * last;
      float m = xr[0];
      for (std::int64_t c = 1; c < last; ++c) m = std::max(m, xr[c]);
      double z = 0.0;
      for (std::int64_t c = 0; c < last; ++c) z += std::exp(xr[c] - m);
      const float logz = m + static_cast<float>(std::log(z));
      for (std::int64_t c = 0; c < last; ++c) orow[c] = xr[c] - logz;
    }
    return out;
  }

  std::vector<tensor> backward(const tensor& g, std::span<const tensor* const>,
                               const tensor& out) const override {
    const std::int64_t last = out.size(-1);
    const std::int64_t rows = out.numel() / last;
    tensor gx{out.shape()};
    auto pl = out.data();
    auto pg = g.data();
    auto po = gx.data();
    for (std::int64_t r = 0; r < rows; ++r) {
      const float* ls = pl.data() + r * last;
      const float* gr = pg.data() + r * last;
      float* orow = po.data() + r * last;
      double gsum = 0.0;
      for (std::int64_t c = 0; c < last; ++c) gsum += gr[c];
      for (std::int64_t c = 0; c < last; ++c)
        orow[c] = gr[c] - std::exp(ls[c]) * static_cast<float>(gsum);
    }
    return {std::move(gx)};
  }
};

}  // namespace

op_ptr make_add() { return std::make_unique<add_op>(); }
op_ptr make_add_broadcast() { return std::make_unique<add_broadcast_op>(); }
op_ptr make_mul() { return std::make_unique<mul_op>(); }
op_ptr make_scale(float s) { return std::make_unique<scale_op>(s); }
op_ptr make_affine(float scale, float shift) { return std::make_unique<affine_op>(scale, shift); }

bool scale_params_of(const op& o, float* s) {
  const auto* p = dynamic_cast<const scale_op*>(&o);
  if (p == nullptr) return false;
  *s = p->factor();
  return true;
}

bool affine_params_of(const op& o, float* scale, float* shift) {
  const auto* p = dynamic_cast<const affine_op*>(&o);
  if (p == nullptr) return false;
  *scale = p->scale();
  *shift = p->shift();
  return true;
}
op_ptr make_relu() { return std::make_unique<relu_op>(); }
op_ptr make_gelu() { return std::make_unique<gelu_op>(); }
op_ptr make_softmax_lastdim() { return std::make_unique<softmax_lastdim_op>(); }
op_ptr make_log_softmax_lastdim() { return std::make_unique<log_softmax_lastdim_op>(); }

}  // namespace pelta::ad
