// Loss ops.
#pragma once

#include "autodiff/op.h"

namespace pelta::ad {

/// Mean cross-entropy over a batch.
/// Parents: (logits [B,C], labels [B] as a constant tensor of class indices).
/// Output: scalar. Labels receive a zero gradient (they are constants).
op_ptr make_cross_entropy();

/// Linear (dense) layer for 2-d activations: (x [B,In], W [In,Out], b [Out])
/// -> [B,Out]. Kept here with the loss to round out the classifier head.
op_ptr make_linear(bool with_bias);

}  // namespace pelta::ad
