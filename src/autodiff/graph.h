// Define-by-run computational graph with reverse-mode differentiation.
//
// The graph is the object PELTA's Algorithm 1 walks: it exposes vertices,
// edges, values u_i and adjoints dL/du_i. Node ids are assigned in
// construction order, which is already a topological order, so backward is a
// single reverse sweep.
#pragma once

#include <string>
#include <vector>

#include "autodiff/node.h"

namespace pelta::ad {

class graph {
public:
  graph() = default;
  graph(const graph&) = delete;             // nodes own op state; no implicit copies
  graph& operator=(const graph&) = delete;
  graph(graph&&) = default;
  graph& operator=(graph&&) = default;

  // ---- construction (forward executes eagerly) -------------------------------

  /// Add the model input leaf (the attacker's trainable x).
  node_id add_input(tensor value, std::string tag = "input");

  /// Add a parameter leaf backed by a persistent nn parameter.
  node_id add_parameter(parameter& p);

  /// Add a non-differentiable constant leaf (labels, fixed tensors).
  node_id add_constant(tensor value, std::string tag = "");

  /// Add a transform vertex u_i = f_i(parents); computes the value eagerly.
  node_id add_transform(op_ptr f, std::vector<node_id> parents, std::string tag = "");

  // ---- observers --------------------------------------------------------------

  std::int64_t node_count() const { return static_cast<std::int64_t>(nodes_.size()); }
  const node& at(node_id id) const;
  node& at_mutable(node_id id);

  const tensor& value(node_id id) const { return at(id).value; }

  /// dL/du_id after backward(); throws if the node holds no adjoint.
  const tensor& adjoint(node_id id) const;
  bool has_adjoint(node_id id) const { return at(id).has_adjoint; }

  /// All direct children of `id` (vertices listing it as a parent).
  std::vector<node_id> children(node_id id) const;

  /// First node whose tag equals `tag`; invalid_node when absent.
  node_id find_tag(const std::string& tag) const;

  /// All nodes whose tag starts with `prefix`, in id (topological) order.
  std::vector<node_id> find_tag_prefix(const std::string& prefix) const;

  /// All input leaves (usually exactly one).
  std::vector<node_id> inputs() const;

  // ---- differentiation ---------------------------------------------------------

  /// Reverse sweep seeding d(seed)/d(seed) = 1; seed must be scalar.
  void backward(node_id seed);

  /// Reverse sweep from an arbitrary node with an explicit seed adjoint
  /// (shape must match the node value). Used by attacks that differentiate
  /// custom objectives of the logits.
  void backward_from(node_id seed, tensor seed_adjoint);

  /// Clear all adjoints (e.g. between two backward passes on one graph).
  void zero_adjoints();

  /// Push adjoints of parameter leaves into their backing parameter::grad.
  void accumulate_param_grads();

  /// (parameter, adjoint) pairs for all parameter leaves holding adjoints —
  /// lets callers merge gradients in a deterministic order (data-parallel
  /// training shards).
  std::vector<std::pair<parameter*, const tensor*>> param_adjoints() const;

  /// Human-readable dump (id, kind, op, tag, shape) for debugging and docs.
  std::string to_string() const;

private:
  void check_id(node_id id) const;

  std::vector<node> nodes_;
};

}  // namespace pelta::ad
