#include "autodiff/graph.h"

#include <sstream>

namespace pelta::ad {

void graph::check_id(node_id id) const {
  PELTA_CHECK_MSG(id >= 0 && id < node_count(), "node id " << id << " out of range");
}

const node& graph::at(node_id id) const {
  check_id(id);
  return nodes_[static_cast<std::size_t>(id)];
}

node& graph::at_mutable(node_id id) {
  check_id(id);
  return nodes_[static_cast<std::size_t>(id)];
}

node_id graph::add_input(tensor value, std::string tag) {
  node n;
  n.id = static_cast<node_id>(nodes_.size());
  n.kind = node_kind::input;
  n.tag = std::move(tag);
  n.value = std::move(value);
  n.input_dependent = true;
  n.requires_grad = true;
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

node_id graph::add_parameter(parameter& p) {
  node n;
  n.id = static_cast<node_id>(nodes_.size());
  n.kind = node_kind::parameter;
  n.tag = p.name;
  n.param = &p;
  n.value = p.value;  // snapshot for this pass
  n.requires_grad = true;
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

node_id graph::add_constant(tensor value, std::string tag) {
  node n;
  n.id = static_cast<node_id>(nodes_.size());
  n.kind = node_kind::constant;
  n.tag = std::move(tag);
  n.value = std::move(value);
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

node_id graph::add_transform(op_ptr f, std::vector<node_id> parents, std::string tag) {
  PELTA_CHECK_MSG(f != nullptr, "add_transform with null op");
  PELTA_CHECK_MSG(!parents.empty(), "transform vertex needs at least one parent");
  node n;
  n.id = static_cast<node_id>(nodes_.size());
  n.kind = node_kind::transform;
  n.tag = std::move(tag);
  n.parents = std::move(parents);

  std::vector<const tensor*> inputs;
  inputs.reserve(n.parents.size());
  for (node_id pid : n.parents) {
    check_id(pid);
    PELTA_CHECK_MSG(pid < n.id, "graph edges must point backwards (topological ids)");
    const node& p = nodes_[static_cast<std::size_t>(pid)];
    inputs.push_back(&p.value);
    n.input_dependent = n.input_dependent || p.input_dependent;
    n.requires_grad = n.requires_grad || p.requires_grad;
  }
  n.value = f->forward({inputs.data(), inputs.size()});
  n.oper = std::move(f);
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

const tensor& graph::adjoint(node_id id) const {
  const node& n = at(id);
  PELTA_CHECK_MSG(n.has_adjoint, "node " << id << " (" << n.tag << ") holds no adjoint");
  return n.adjoint;
}

std::vector<node_id> graph::children(node_id id) const {
  check_id(id);
  std::vector<node_id> out;
  for (const node& n : nodes_)
    for (node_id p : n.parents)
      if (p == id) {
        out.push_back(n.id);
        break;
      }
  return out;
}

node_id graph::find_tag(const std::string& tag) const {
  for (const node& n : nodes_)
    if (n.tag == tag) return n.id;
  return invalid_node;
}

std::vector<node_id> graph::find_tag_prefix(const std::string& prefix) const {
  std::vector<node_id> out;
  for (const node& n : nodes_)
    if (n.tag.compare(0, prefix.size(), prefix) == 0) out.push_back(n.id);
  return out;
}

std::vector<node_id> graph::inputs() const {
  std::vector<node_id> out;
  for (const node& n : nodes_)
    if (n.kind == node_kind::input) out.push_back(n.id);
  return out;
}

void graph::backward(node_id seed) {
  const node& s = at(seed);
  PELTA_CHECK_MSG(s.value.numel() == 1,
                  "backward() seed must be scalar; node " << seed << " has shape "
                                                          << pelta::to_string(s.value.shape()));
  backward_from(seed, tensor::scalar(1.0f));
}

void graph::backward_from(node_id seed, tensor seed_adjoint) {
  const node& s = at(seed);
  PELTA_CHECK_MSG(s.value.same_shape(seed_adjoint),
                  "seed adjoint shape " << pelta::to_string(seed_adjoint.shape()) << " != node value shape "
                                        << pelta::to_string(s.value.shape()));

  // Per-sweep pending adjoints: only this seed's contribution propagates,
  // so repeated backward calls accumulate like independent sweeps.
  std::vector<tensor> pending(nodes_.size());
  std::vector<bool> has_pending(nodes_.size(), false);
  pending[static_cast<std::size_t>(seed)] = std::move(seed_adjoint);
  has_pending[static_cast<std::size_t>(seed)] = true;

  for (node_id id = seed; id >= 0; --id) {
    if (!has_pending[static_cast<std::size_t>(id)]) continue;
    node& n = nodes_[static_cast<std::size_t>(id)];
    tensor& local = pending[static_cast<std::size_t>(id)];

    if (n.kind == node_kind::transform) {
      std::vector<const tensor*> inputs;
      inputs.reserve(n.parents.size());
      for (node_id pid : n.parents)
        inputs.push_back(&nodes_[static_cast<std::size_t>(pid)].value);

      std::vector<tensor> parent_grads =
          n.oper->backward(local, {inputs.data(), inputs.size()}, n.value);
      PELTA_CHECK_MSG(parent_grads.size() == n.parents.size(),
                      "op " << n.oper->name() << " returned " << parent_grads.size()
                            << " grads for " << n.parents.size() << " parents");

      for (std::size_t k = 0; k < n.parents.size(); ++k) {
        const node& p = nodes_[static_cast<std::size_t>(n.parents[k])];
        if (!p.requires_grad) continue;
        PELTA_CHECK_MSG(parent_grads[k].same_shape(p.value),
                        "op " << n.oper->name() << " grad shape "
                              << pelta::to_string(parent_grads[k].shape())
                              << " != parent value shape " << pelta::to_string(p.value.shape()));
        const std::size_t pk = static_cast<std::size_t>(n.parents[k]);
        if (has_pending[pk])
          pending[pk].add_(parent_grads[k]);
        else {
          pending[pk] = std::move(parent_grads[k]);
          has_pending[pk] = true;
        }
      }
    }

    // Fold this sweep's contribution into the persistent adjoint.
    if (n.has_adjoint)
      n.adjoint.add_(local);
    else {
      n.adjoint = std::move(local);
      n.has_adjoint = true;
    }
  }
}

void graph::zero_adjoints() {
  for (node& n : nodes_) {
    n.has_adjoint = false;
    n.adjoint = tensor{};
  }
}

void graph::accumulate_param_grads() {
  for (node& n : nodes_) {
    if (n.kind != node_kind::parameter || !n.has_adjoint) continue;
    PELTA_CHECK(n.param != nullptr);
    n.param->grad.add_(n.adjoint);
  }
}

std::vector<std::pair<parameter*, const tensor*>> graph::param_adjoints() const {
  std::vector<std::pair<parameter*, const tensor*>> out;
  for (const node& n : nodes_) {
    if (n.kind != node_kind::parameter || !n.has_adjoint) continue;
    PELTA_CHECK(n.param != nullptr);
    out.emplace_back(n.param, &n.adjoint);
  }
  return out;
}

std::string graph::to_string() const {
  std::ostringstream os;
  for (const node& n : nodes_) {
    os << '#' << n.id << ' ';
    switch (n.kind) {
      case node_kind::input: os << "input"; break;
      case node_kind::parameter: os << "param"; break;
      case node_kind::constant: os << "const"; break;
      case node_kind::transform: os << n.oper->name(); break;
    }
    os << ' ' << pelta::to_string(n.value.shape());
    if (!n.tag.empty()) os << " tag=" << n.tag;
    if (!n.parents.empty()) {
      os << " <- (";
      for (std::size_t i = 0; i < n.parents.size(); ++i)
        os << (i ? "," : "") << n.parents[i];
      os << ')';
    }
    if (n.input_dependent) os << " [x-dep]";
    os << '\n';
  }
  return os.str();
}

}  // namespace pelta::ad
