#include "defenses/encoding.h"

#include <array>
#include <cmath>

#include "tensor/ops.h"

namespace pelta::defenses {

namespace {

constexpr std::int64_t kBlock = 8;

/// Orthonormal DCT-II basis: basis[u][x] = c(u) cos((2x+1) u pi / 16) with
/// c(0) = sqrt(1/8), c(u>0) = sqrt(2/8) — so the matrix is unitary and the
/// inverse transform is its transpose.
const std::array<std::array<float, kBlock>, kBlock>& dct_basis() {
  static const auto basis = [] {
    std::array<std::array<float, kBlock>, kBlock> b{};
    const double pi = std::acos(-1.0);
    for (std::int64_t u = 0; u < kBlock; ++u) {
      const double c = u == 0 ? std::sqrt(1.0 / kBlock) : std::sqrt(2.0 / kBlock);
      for (std::int64_t x = 0; x < kBlock; ++x)
        b[static_cast<std::size_t>(u)][static_cast<std::size_t>(x)] =
            static_cast<float>(c * std::cos((2.0 * static_cast<double>(x) + 1.0) *
                                            static_cast<double>(u) * pi / (2.0 * kBlock)));
    }
    return b;
  }();
  return basis;
}

/// Standard JPEG luminance quantization table (Annex K of the spec).
constexpr int kJpegLuminance[kBlock][kBlock] = {
    {16, 11, 10, 16, 24, 40, 51, 61},   {12, 12, 14, 19, 26, 58, 60, 55},
    {14, 13, 16, 24, 40, 57, 69, 56},   {14, 17, 22, 29, 51, 87, 80, 62},
    {18, 22, 37, 56, 68, 109, 103, 77}, {24, 35, 55, 64, 81, 104, 113, 92},
    {49, 64, 78, 87, 103, 121, 120, 101}, {72, 92, 95, 98, 112, 100, 103, 99}};

void check_blockable(const tensor& image) {
  PELTA_CHECK_MSG(image.ndim() == 3, "codec expects [C,H,W], got " << to_string(image.shape()));
  PELTA_CHECK_MSG(image.size(1) % kBlock == 0 && image.size(2) % kBlock == 0,
                  "image " << to_string(image.shape()) << " not a multiple of the 8x8 block size");
}

// out_block = L * in_block * R^T over one 8x8 block, with L/R either the
// basis (forward) or its transpose (inverse).
template <bool Forward>
void transform_block(const tensor& src, tensor& dst, std::int64_t c, std::int64_t by,
                     std::int64_t bx) {
  const auto& basis = dct_basis();
  float tmp[kBlock][kBlock];
  // rows: tmp = B * src  (forward) or B^T * src (inverse)
  for (std::int64_t u = 0; u < kBlock; ++u)
    for (std::int64_t x = 0; x < kBlock; ++x) {
      float acc = 0.0f;
      for (std::int64_t k = 0; k < kBlock; ++k) {
        const float b = Forward ? basis[static_cast<std::size_t>(u)][static_cast<std::size_t>(k)]
                                : basis[static_cast<std::size_t>(k)][static_cast<std::size_t>(u)];
        acc += b * src.at(c, by + k, bx + x);
      }
      tmp[u][x] = acc;
    }
  // columns: dst = tmp * B^T (forward) or tmp * B (inverse)
  for (std::int64_t u = 0; u < kBlock; ++u)
    for (std::int64_t v = 0; v < kBlock; ++v) {
      float acc = 0.0f;
      for (std::int64_t k = 0; k < kBlock; ++k) {
        const float b = Forward ? basis[static_cast<std::size_t>(v)][static_cast<std::size_t>(k)]
                                : basis[static_cast<std::size_t>(k)][static_cast<std::size_t>(v)];
        acc += tmp[u][k] * b;
      }
      dst.at(c, by + u, bx + v) = acc;
    }
}

template <bool Forward>
tensor transform_image(const tensor& image) {
  check_blockable(image);
  tensor out{image.shape()};
  for (std::int64_t c = 0; c < image.size(0); ++c)
    for (std::int64_t by = 0; by < image.size(1); by += kBlock)
      for (std::int64_t bx = 0; bx < image.size(2); bx += kBlock)
        transform_block<Forward>(image, out, c, by, bx);
  return out;
}

}  // namespace

tensor dct2_blockwise(const tensor& image) { return transform_image<true>(image); }

tensor idct2_blockwise(const tensor& coefficients) { return transform_image<false>(coefficients); }

jpeg_codec::jpeg_codec(std::int64_t quality) : quality_{quality} {
  PELTA_CHECK_MSG(quality >= 1 && quality <= 100, "jpeg quality " << quality << " outside [1,100]");
  name_ = "jpeg" + std::to_string(quality_);
  // libjpeg quality->scale convention, then into [0,1] pixel units. The
  // orthonormal 8x8 DCT of a 255-scaled image is 8x the JPEG convention's,
  // which the /255 absorbs up to the fixed factor folded into the table.
  const double scale = quality < 50 ? 5000.0 / static_cast<double>(quality)
                                    : 200.0 - 2.0 * static_cast<double>(quality);
  for (std::int64_t u = 0; u < kBlock; ++u)
    for (std::int64_t v = 0; v < kBlock; ++v) {
      double s = std::floor((kJpegLuminance[u][v] * scale + 50.0) / 100.0);
      if (s < 1.0) s = 1.0;
      table_[u][v] = static_cast<float>(s / 255.0);
    }
}

float jpeg_codec::step(std::int64_t u, std::int64_t v) const {
  PELTA_CHECK_MSG(u >= 0 && u < kBlock && v >= 0 && v < kBlock, "frequency index out of range");
  return table_[u][v];
}

tensor jpeg_codec::apply(const tensor& image, rng& /*gen*/) const {
  tensor coef = dct2_blockwise(image);
  for (std::int64_t c = 0; c < coef.size(0); ++c)
    for (std::int64_t y = 0; y < coef.size(1); ++y)
      for (std::int64_t x = 0; x < coef.size(2); ++x) {
        const float s = table_[y % kBlock][x % kBlock];
        coef.at(c, y, x) = std::round(coef.at(c, y, x) / s) * s;
      }
  return ops::clamp(idct2_blockwise(coef), 0.0f, 1.0f);
}

}  // namespace pelta::defenses
