// Quantization defense (feature squeezing, Xu et al.; the "quantization"
// family of Ren et al. [47] named in §VII).
//
// Rounding every pixel to a b-bit grid removes the sub-quantum adversarial
// signal and presents the attacker with a zero-gradient staircase — a
// classic shattered-gradient defense, and therefore a classic BPDA target.
#pragma once

#include "defenses/preprocessor.h"

namespace pelta::defenses {

class bit_depth_quantizer final : public preprocessor {
public:
  /// `bits` in [1, 16]: pixels are rounded to 2^bits - 1 uniform levels.
  explicit bit_depth_quantizer(std::int64_t bits);

  const std::string& name() const override { return name_; }
  tensor apply(const tensor& image, rng& gen) const override;
  bool randomized() const override { return false; }
  bool differentiable() const override { return false; }

  std::int64_t bits() const { return bits_; }
  std::int64_t levels() const { return levels_; }

private:
  std::int64_t bits_;
  std::int64_t levels_;
  std::string name_;
};

}  // namespace pelta::defenses
