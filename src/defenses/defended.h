// A model behind a preprocessor chain — the deployment unit of the §VII
// "PELTA along with existing software defenses" study.
//
// Classification of a sample runs the chain first (drawing fresh
// randomness per call for randomized stages), optionally repeated with a
// majority vote to stabilize randomized chains. The defended model is what
// the robust-accuracy harness scores; the attack side (attacks/eot.h)
// builds its BPDA/EOT oracles from the same chain.
#pragma once

#include "defenses/preprocessor.h"
#include "models/model.h"

namespace pelta::defenses {

class defended_model {
public:
  /// `votes` >= 1: number of preprocessed forward passes whose predictions
  /// are majority-voted (ties break toward the smaller class index).
  /// Deterministic chains ignore votes > 1 — every pass is identical.
  defended_model(const models::model& m, const preprocessor_chain& chain, std::int64_t votes = 1);

  const models::model& base() const { return *model_; }
  const preprocessor_chain& chain() const { return *chain_; }
  std::int64_t votes() const { return votes_; }

  /// Predicted class of one [C,H,W] image; `gen` feeds the chain.
  std::int64_t predict_one(const tensor& image, rng& gen) const;

  /// Batched predictions [N] for images [N,C,H,W]: the chain still runs per
  /// sample (stream i forked from `seed`, drawing across vote rounds in the
  /// same order predict_one would), but each vote round then runs as ONE
  /// batched forward pass. Bit-identical to a serial
  /// `predict_one(image_i, root.fork(i))` loop — the per-sample path
  /// accuracy() scores — because eval-mode forwards are per-sample
  /// independent.
  tensor predict_batch(const tensor& images, std::uint64_t seed) const;

  /// Fraction of `images` [N,C,H,W] matching `labels` [N]; per-sample rng
  /// streams forked from `seed` keep the result thread-count independent.
  float accuracy(const tensor& images, const tensor& labels, std::uint64_t seed) const;

private:
  const models::model* model_;
  const preprocessor_chain* chain_;
  std::int64_t votes_;
};

/// Standard chains used by the combined-defense bench and tests.
preprocessor_chain make_chain(const std::string& spec);  ///< "quantize", "jpeg", "resize", "noise", "quantize+jpeg", ... ("" = empty)

/// Apply `chain` to every [C,H,W] slice of a [N,C,H,W] batch, sample i
/// drawing from the stream forked at `stream_ids[i]`, so a sample's
/// randomness does not depend on which batch it landed in. The serving
/// runtime fuses the same fork-by-request-id convention into its gather
/// step (serve/server.cpp) — keep the two stream layouts in lockstep.
/// Runs on the thread pool; bit-identical for every PELTA_THREADS value.
/// `stream_ids` empty = fork by position.
tensor apply_chain_batch(const preprocessor_chain& chain, const tensor& images,
                         std::uint64_t seed, const std::vector<std::int64_t>& stream_ids = {});

}  // namespace pelta::defenses
