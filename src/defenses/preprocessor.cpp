#include "defenses/preprocessor.h"

#include "tensor/check.h"

namespace pelta::defenses {

bool preprocessor_chain::randomized() const {
  for (const auto& s : stages_)
    if (s->randomized()) return true;
  return false;
}

bool preprocessor_chain::shatters_gradient() const {
  for (const auto& s : stages_)
    if (!s->differentiable()) return true;
  return false;
}

std::string preprocessor_chain::describe() const {
  if (stages_.empty()) return "none";
  std::string out;
  for (const auto& s : stages_) {
    if (!out.empty()) out += "+";
    out += s->name();
  }
  return out;
}

tensor preprocessor_chain::apply(const tensor& image, rng& gen) const {
  tensor x = image;
  for (const auto& s : stages_) {
    tensor y = s->apply(x, gen);
    PELTA_CHECK_MSG(y.shape() == x.shape(),
                    "preprocessor " << s->name() << " changed shape " << to_string(x.shape())
                                    << " -> " << to_string(y.shape()));
    x = std::move(y);
  }
  return x;
}

}  // namespace pelta::defenses
