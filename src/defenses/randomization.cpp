#include "defenses/randomization.h"

#include <cmath>

#include "tensor/ops.h"

namespace pelta::defenses {

tensor resize_bilinear(const tensor& image, std::int64_t out_h, std::int64_t out_w) {
  PELTA_CHECK_MSG(image.ndim() == 3, "resize expects [C,H,W], got " << to_string(image.shape()));
  PELTA_CHECK_MSG(out_h >= 1 && out_w >= 1, "resize target " << out_h << "x" << out_w);
  const std::int64_t channels = image.size(0);
  const std::int64_t in_h = image.size(1);
  const std::int64_t in_w = image.size(2);
  tensor out{shape_t{channels, out_h, out_w}};

  // Align-corners sampling; degenerate axes collapse to source index 0.
  const float sy = out_h > 1 ? static_cast<float>(in_h - 1) / static_cast<float>(out_h - 1) : 0.0f;
  const float sx = out_w > 1 ? static_cast<float>(in_w - 1) / static_cast<float>(out_w - 1) : 0.0f;
  for (std::int64_t c = 0; c < channels; ++c)
    for (std::int64_t y = 0; y < out_h; ++y) {
      const float fy = static_cast<float>(y) * sy;
      const std::int64_t y0 = static_cast<std::int64_t>(fy);
      const std::int64_t y1 = std::min(y0 + 1, in_h - 1);
      const float wy = fy - static_cast<float>(y0);
      for (std::int64_t x = 0; x < out_w; ++x) {
        const float fx = static_cast<float>(x) * sx;
        const std::int64_t x0 = static_cast<std::int64_t>(fx);
        const std::int64_t x1 = std::min(x0 + 1, in_w - 1);
        const float wx = fx - static_cast<float>(x0);
        const float top = (1.0f - wx) * image.at(c, y0, x0) + wx * image.at(c, y0, x1);
        const float bot = (1.0f - wx) * image.at(c, y1, x0) + wx * image.at(c, y1, x1);
        out.at(c, y, x) = (1.0f - wy) * top + wy * bot;
      }
    }
  return out;
}

random_resize_pad::random_resize_pad(std::int64_t max_shrink) : max_shrink_{max_shrink} {
  PELTA_CHECK_MSG(max_shrink >= 1, "max_shrink " << max_shrink << " must be >= 1");
  name_ = "resize" + std::to_string(max_shrink_);
}

tensor random_resize_pad::apply(const tensor& image, rng& gen) const {
  PELTA_CHECK_MSG(image.ndim() == 3, "expects [C,H,W], got " << to_string(image.shape()));
  const std::int64_t h = image.size(1);
  const std::int64_t w = image.size(2);
  PELTA_CHECK_MSG(max_shrink_ < h && max_shrink_ < w,
                  "max_shrink " << max_shrink_ << " too large for " << to_string(image.shape()));

  const std::int64_t shrink = gen.uniform_int(0, max_shrink_);  // inclusive
  if (shrink == 0) return image;
  const tensor small = resize_bilinear(image, h - shrink, w - shrink);
  const std::int64_t off_y = gen.uniform_int(0, shrink);
  const std::int64_t off_x = gen.uniform_int(0, shrink);

  tensor out{image.shape()};  // zero canvas
  for (std::int64_t c = 0; c < image.size(0); ++c)
    for (std::int64_t y = 0; y < h - shrink; ++y)
      for (std::int64_t x = 0; x < w - shrink; ++x)
        out.at(c, off_y + y, off_x + x) = small.at(c, y, x);
  return out;
}

gaussian_noise::gaussian_noise(float stddev) : stddev_{stddev} {
  PELTA_CHECK_MSG(stddev >= 0.0f, "noise stddev must be non-negative");
  name_ = "noise";
}

tensor gaussian_noise::apply(const tensor& image, rng& gen) const {
  tensor out = image;
  for (float& x : out.data()) x = x + gen.normal(0.0f, stddev_);
  return ops::clamp(out, 0.0f, 1.0f);
}

}  // namespace pelta::defenses
