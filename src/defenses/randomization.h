// Randomization defenses (the family of Ren et al. [47]; the paper's §II
// already notes FL work re-using inference-time randomization [34] and the
// reservations of Athalye et al. [35] about it — which our EOT attacker
// makes measurable).
//
//   * random_resize_pad — Xie et al. (ICLR'18): bilinearly shrink to a
//     random size, paste at a random offset of a zero canvas. Differentiable
//     but randomized: a single gradient sample is noisy; EOT averages it out.
//   * gaussian_noise    — additive input noise, clamped to [0,1].
#pragma once

#include "defenses/preprocessor.h"

namespace pelta::defenses {

/// General bilinear resize of a [C,H,W] image to (out_h, out_w) with
/// align-corners sampling. Exposed for tests and shared with the codec.
tensor resize_bilinear(const tensor& image, std::int64_t out_h, std::int64_t out_w);

class random_resize_pad final : public preprocessor {
public:
  /// Shrinks to a uniformly drawn side in [H - max_shrink, H] and pads back
  /// to HxW at a uniform offset. max_shrink must be >= 1.
  explicit random_resize_pad(std::int64_t max_shrink);

  const std::string& name() const override { return name_; }
  tensor apply(const tensor& image, rng& gen) const override;
  bool randomized() const override { return true; }
  bool differentiable() const override { return true; }

  std::int64_t max_shrink() const { return max_shrink_; }

private:
  std::int64_t max_shrink_;
  std::string name_;
};

class gaussian_noise final : public preprocessor {
public:
  explicit gaussian_noise(float stddev);

  const std::string& name() const override { return name_; }
  tensor apply(const tensor& image, rng& gen) const override;
  bool randomized() const override { return true; }
  bool differentiable() const override { return true; }

  float stddev() const { return stddev_; }

private:
  float stddev_;
  std::string name_;
};

}  // namespace pelta::defenses
