// Encoding defense: JPEG-style lossy transform coding (the "encoding"
// family of Ren et al. [47] named in §VII; Dziugaite et al. / Guo et al.
// studied JPEG as an adversarial defense).
//
// Per channel, the image is cut into 8x8 blocks, each block is mapped to
// frequency space with an orthonormal 2-D DCT-II, the coefficients are
// divided by a quality-scaled quantization table and rounded (this is the
// lossy step that discards the high-frequency adversarial signal), then
// de-quantized and inverse-transformed. Rounding makes the codec a
// shattered-gradient transform, so the BPDA attacker treats it as identity.
#pragma once

#include "defenses/preprocessor.h"

namespace pelta::defenses {

/// Blockwise orthonormal 2-D DCT-II of one [C,H,W] image (H, W multiples of
/// 8). Exposed for tests: the transform must be unitary (Parseval) and must
/// compact a constant block into its DC coefficient.
tensor dct2_blockwise(const tensor& image);
/// Inverse (DCT-III with the same normalization); exact round-trip.
tensor idct2_blockwise(const tensor& coefficients);

class jpeg_codec final : public preprocessor {
public:
  /// `quality` in [1, 100]; 100 keeps all coefficients at the finest grid,
  /// lower values discard progressively more high-frequency content. The
  /// quality->scale mapping follows the libjpeg convention.
  explicit jpeg_codec(std::int64_t quality);

  const std::string& name() const override { return name_; }
  tensor apply(const tensor& image, rng& gen) const override;
  bool randomized() const override { return false; }
  bool differentiable() const override { return false; }

  std::int64_t quality() const { return quality_; }
  /// Quality-scaled quantization step for frequency (u, v) in the 8x8 grid.
  float step(std::int64_t u, std::int64_t v) const;

private:
  std::int64_t quality_;
  std::string name_;
  float table_[8][8];  // scaled quantization steps, pixel-domain units
};

}  // namespace pelta::defenses
