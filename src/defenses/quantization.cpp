#include "defenses/quantization.h"

#include <cmath>

#include "tensor/ops.h"

namespace pelta::defenses {

bit_depth_quantizer::bit_depth_quantizer(std::int64_t bits)
    : bits_{bits}, levels_{(std::int64_t{1} << bits) - 1} {
  PELTA_CHECK_MSG(bits >= 1 && bits <= 16, "quantizer bits " << bits << " outside [1,16]");
  name_ = "quantize" + std::to_string(bits_);
}

tensor bit_depth_quantizer::apply(const tensor& image, rng& /*gen*/) const {
  const float scale = static_cast<float>(levels_);
  return ops::map(image, [scale](float x) { return std::round(x * scale) / scale; });
}

}  // namespace pelta::defenses
