// Software input-transformation defenses (§II, §VII future work).
//
// The paper positions PELTA "not as a competitor algorithm ... but rather
// as a supplementary hardware-reliant aid to existing protocols" and names
// the three software families of Ren et al. [47] it should compose with:
// randomization, quantization and encoding. This module implements one
// representative of each family behind a common preprocessor interface, a
// chain combinator, and the flags the attack side needs to mount the
// standard counters (BPDA for shattered gradients, EOT for randomized
// transforms — both from Athalye et al. [35], which the paper builds on).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace pelta::defenses {

/// An inference-time input transformation applied before the model.
class preprocessor {
public:
  virtual ~preprocessor() = default;

  virtual const std::string& name() const = 0;

  /// Transform a [C,H,W] image in [0,1]; the result keeps shape and range.
  /// Deterministic preprocessors ignore `gen`.
  virtual tensor apply(const tensor& image, rng& gen) const = 0;

  /// True when apply() consumes randomness — the EOT-relevant class.
  virtual bool randomized() const = 0;

  /// True when the transform has a usable analytic derivative. False marks
  /// a "shattered gradient" (staircase / rounding) transform: the BPDA
  /// attacker back-propagates through it as the identity.
  virtual bool differentiable() const = 0;
};

/// Ordered composition of preprocessors (applied front to back).
class preprocessor_chain {
public:
  preprocessor_chain() = default;

  preprocessor_chain& add(std::unique_ptr<preprocessor> p) {
    stages_.push_back(std::move(p));
    return *this;
  }

  std::int64_t size() const { return static_cast<std::int64_t>(stages_.size()); }
  bool empty() const { return stages_.empty(); }
  const preprocessor& stage(std::int64_t i) const { return *stages_[static_cast<std::size_t>(i)]; }

  /// Any stage randomized / any stage gradient-shattering.
  bool randomized() const;
  bool shatters_gradient() const;

  /// "quantize+jpeg" style summary for table rows.
  std::string describe() const;

  tensor apply(const tensor& image, rng& gen) const;

private:
  std::vector<std::unique_ptr<preprocessor>> stages_;
};

}  // namespace pelta::defenses
