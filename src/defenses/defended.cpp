#include "defenses/defended.h"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "defenses/encoding.h"
#include "defenses/quantization.h"
#include "defenses/randomization.h"
#include "tensor/parallel.h"

namespace pelta::defenses {

defended_model::defended_model(const models::model& m, const preprocessor_chain& chain,
                               std::int64_t votes)
    : model_{&m}, chain_{&chain}, votes_{votes} {
  PELTA_CHECK_MSG(votes >= 1, "votes " << votes << " must be >= 1");
}

std::int64_t defended_model::predict_one(const tensor& image, rng& gen) const {
  const std::int64_t rounds = chain_->randomized() ? votes_ : 1;
  if (rounds == 1) return models::predict_one(*model_, chain_->apply(image, gen));

  std::vector<std::int64_t> counts(static_cast<std::size_t>(model_->num_classes()), 0);
  for (std::int64_t v = 0; v < rounds; ++v)
    ++counts[static_cast<std::size_t>(models::predict_one(*model_, chain_->apply(image, gen)))];
  std::int64_t best = 0;
  for (std::int64_t c = 1; c < model_->num_classes(); ++c)
    if (counts[static_cast<std::size_t>(c)] > counts[static_cast<std::size_t>(best)]) best = c;
  return best;
}

tensor defended_model::predict_batch(const tensor& images, std::uint64_t seed) const {
  PELTA_CHECK_MSG(images.ndim() == 4, "predict_batch expects [N,C,H,W]");
  const std::int64_t n = images.size(0);
  const std::int64_t c = images.size(1), h = images.size(2), w = images.size(3);
  const std::int64_t stride = c * h * w;
  const std::int64_t rounds = chain_->randomized() ? votes_ : 1;
  const rng root{seed};

  // Preprocess every (sample, vote round) pair first: sample i's generator
  // is forked once and drawn across its rounds sequentially — the exact
  // stream predict_one consumes — then each round becomes one batched
  // forward instead of N single-sample passes.
  std::vector<tensor> round_batches;
  round_batches.reserve(static_cast<std::size_t>(rounds));
  for (std::int64_t v = 0; v < rounds; ++v) round_batches.emplace_back(shape_t{n, c, h, w});
  parallel_for(n, [&](std::int64_t i) {
    rng gen = root.fork(static_cast<std::uint64_t>(i));
    tensor image{shape_t{c, h, w}};
    const auto src = images.data();
    std::copy(src.begin() + i * stride, src.begin() + (i + 1) * stride, image.data().begin());
    for (std::int64_t v = 0; v < rounds; ++v) {
      const tensor pre = chain_->apply(image, gen);
      std::copy(pre.data().begin(), pre.data().end(),
                round_batches[static_cast<std::size_t>(v)].data().begin() + i * stride);
    }
  });

  if (rounds == 1) return models::predict(*model_, round_batches.front());

  std::vector<std::vector<std::int64_t>> counts(
      static_cast<std::size_t>(n),
      std::vector<std::int64_t>(static_cast<std::size_t>(model_->num_classes()), 0));
  for (std::int64_t v = 0; v < rounds; ++v) {
    const tensor preds = models::predict(*model_, round_batches[static_cast<std::size_t>(v)]);
    for (std::int64_t i = 0; i < n; ++i)
      ++counts[static_cast<std::size_t>(i)][static_cast<std::size_t>(preds[i])];
  }
  tensor voted{shape_t{n}};
  for (std::int64_t i = 0; i < n; ++i) {
    std::int64_t best = 0;  // ties break toward the smaller class index
    for (std::int64_t k = 1; k < model_->num_classes(); ++k)
      if (counts[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] >
          counts[static_cast<std::size_t>(i)][static_cast<std::size_t>(best)])
        best = k;
    voted[i] = static_cast<float>(best);
  }
  return voted;
}

float defended_model::accuracy(const tensor& images, const tensor& labels,
                               std::uint64_t seed) const {
  PELTA_CHECK_MSG(images.ndim() == 4 && images.size(0) == labels.numel(),
                  "accuracy expects [N,C,H,W] images with matching [N] labels");
  const std::int64_t n = images.size(0);
  const std::int64_t stride = images.numel() / n;
  const rng root{seed};
  // Lock-free on purpose (lock discipline, docs/ARCHITECTURE.md): these are
  // commutative-sum atomics incremented from parallel_for chunks — order
  // cannot affect the integer totals, so no mutex / PELTA_GUARDED_BY is
  // needed and fetch-add contention is the only synchronization.
  std::atomic<std::int64_t> correct{0};
  parallel_for(n, [&](std::int64_t i) {
    rng gen = root.fork(static_cast<std::uint64_t>(i));
    tensor image{shape_t{images.size(1), images.size(2), images.size(3)}};
    const auto src = images.data();
    std::copy(src.begin() + i * stride, src.begin() + (i + 1) * stride, image.data().begin());
    if (predict_one(image, gen) == static_cast<std::int64_t>(labels[i]))
      correct.fetch_add(1, std::memory_order_relaxed);
  });
  return static_cast<float>(correct.load()) / static_cast<float>(n);
}

tensor apply_chain_batch(const preprocessor_chain& chain, const tensor& images,
                         std::uint64_t seed, const std::vector<std::int64_t>& stream_ids) {
  PELTA_CHECK_MSG(images.ndim() == 4, "apply_chain_batch expects [N,C,H,W]");
  const std::int64_t n = images.size(0);
  PELTA_CHECK_MSG(stream_ids.empty() || static_cast<std::int64_t>(stream_ids.size()) == n,
                  "stream_ids size " << stream_ids.size() << " != batch size " << n);
  const std::int64_t stride = images.numel() / std::max<std::int64_t>(n, 1);
  const rng root{seed};

  tensor out{images.shape()};
  parallel_for(n, [&](std::int64_t i) {
    const std::uint64_t stream =
        stream_ids.empty() ? static_cast<std::uint64_t>(i)
                           : static_cast<std::uint64_t>(stream_ids[static_cast<std::size_t>(i)]);
    rng gen = root.fork(stream);
    tensor image{shape_t{images.size(1), images.size(2), images.size(3)}};
    const auto src = images.data();
    std::copy(src.begin() + i * stride, src.begin() + (i + 1) * stride, image.data().begin());
    const tensor pre = chain.apply(image, gen);
    std::copy(pre.data().begin(), pre.data().end(), out.data().begin() + i * stride);
  });
  return out;
}

preprocessor_chain make_chain(const std::string& spec) {
  preprocessor_chain chain;
  if (spec.empty() || spec == "none") return chain;
  std::istringstream in{spec};
  std::string part;
  while (std::getline(in, part, '+')) {
    if (part == "quantize")
      chain.add(std::make_unique<bit_depth_quantizer>(4));
    else if (part == "jpeg")
      chain.add(std::make_unique<jpeg_codec>(40));
    else if (part == "resize")
      chain.add(std::make_unique<random_resize_pad>(3));
    else if (part == "noise")
      chain.add(std::make_unique<gaussian_noise>(0.02f));
    else
      throw error{"unknown defense spec part: " + part};
  }
  return chain;
}

}  // namespace pelta::defenses
