#include "serve/cluster.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <exception>
#include <numeric>
#include <utility>

#include "core/simclock.h"
#include "serve/exec.h"
#include "tensor/check.h"
#include "tensor/parallel.h"
#include "tensor/rng.h"

namespace pelta::serve {

namespace {

// Event kinds double as the shared queue's event id, so the queue's
// (stamp, id, seq) order IS the cluster's equal-stamp priority: finishes
// free load before routing, chaos reshapes the fleet before routing, the
// autoscaler ticks on pre-arrival state, and an arrival stamped exactly at
// a batch deadline is admitted before the deadline closes the batch (the
// inclusive-window rule plan_batches follows).
enum ev_kind : std::int64_t {
  ev_finish = 0,
  ev_kill = 1,
  ev_restart = 2,
  ev_tick = 3,
  ev_arrival = 4,
  ev_deadline = 5,
};

// Side payload per pushed event, indexed by the queue's seq (every push on
// an open queue consumes exactly one seq).
//   arrival:  a = workload index,  b = 1 when re-routed after a kill/drain
//   deadline: a = slot,            b = the slot's open-generation at push
//   finish:   a = batch index
//   kill/restart: a = slot
//   tick:     a = tick ordinal
struct ev_payload {
  std::int64_t a = 0;
  std::int64_t b = 0;
};

struct slot_state {
  bool alive = false;
  std::int64_t open_batch = -1;  ///< index into plan.batches, -1 when none
  std::int64_t open_gen = 0;     ///< bumped per open; stales old deadline events
  double busy_until_ns = 0.0;    ///< modeled pipeline clock
  std::int64_t load = 0;         ///< routed-but-unfinished requests
  std::vector<std::int64_t> inflight;  ///< dispatched batches, finish pending
};

struct held_req {
  std::size_t request = 0;
  bool requeued = false;
};

}  // namespace

cluster_plan plan_cluster(const cluster_config& config, const std::vector<double>& submit_ns,
                          const std::vector<std::int64_t>& ids) {
  PELTA_CHECK_MSG(submit_ns.size() == ids.size(),
                  "plan_cluster needs one id per arrival stamp");
  PELTA_CHECK_MSG(config.replicas >= 1, "a cluster needs at least one replica");
  const batch_policy& policy = config.server.policy;
  PELTA_CHECK_MSG(policy.max_batch >= 1, "batch_policy.max_batch must be >= 1");
  PELTA_CHECK_MSG(policy.max_delay_ns >= 0.0, "batch_policy.max_delay_ns must be >= 0");
  const autoscale_config& scale = config.autoscale;
  if (scale.enabled) {
    PELTA_CHECK_MSG(scale.tick_ns > 0.0 && std::isfinite(scale.tick_ns),
                    "autoscale.tick_ns must be positive and finite");
    PELTA_CHECK_MSG(scale.min_replicas >= 1, "autoscale.min_replicas must be >= 1");
    PELTA_CHECK_MSG(scale.max_replicas >= scale.min_replicas,
                    "autoscale watermark slots are inverted");
    PELTA_CHECK_MSG(scale.hysteresis_ticks >= 1, "autoscale.hysteresis_ticks must be >= 1");
    PELTA_CHECK_MSG(scale.low_watermark <= scale.high_watermark,
                    "autoscale watermarks are inverted");
  }
  for (double s : submit_ns)
    PELTA_CHECK_MSG(std::isfinite(s), "arrival stamps must be finite, got " << s);

  const std::size_t n = submit_ns.size();
  cluster_plan plan;
  plan.requests = static_cast<std::int64_t>(n);
  const std::int64_t slots =
      scale.enabled ? std::max(config.replicas, scale.max_replicas) : config.replicas;
  plan.slots = slots;
  plan.final_replica.assign(n, -1);
  plan.routed_per_slot.assign(static_cast<std::size_t>(slots), 0);

  std::vector<slot_state> state(static_cast<std::size_t>(slots));
  for (std::int64_t s = 0; s < config.replicas; ++s) state[static_cast<std::size_t>(s)].alive = true;
  std::int64_t live = config.replicas;
  plan.peak_live = live;

  core::event_queue events;  // open: the cluster queue never rejects
  std::vector<ev_payload> payload;
  std::int64_t pending_arrivals = 0;
  const auto push_event = [&](double stamp, ev_kind kind, std::int64_t a, std::int64_t b) {
    events.push(stamp, static_cast<std::int64_t>(kind));
    payload.push_back(ev_payload{a, b});
  };
  // (submit_ns, id, index): the canonical request order. Equal-stamp pushes
  // in this order pop in this order via the queue's seq tie-break.
  const auto canonical = [&](std::vector<std::size_t>& requests) {
    std::stable_sort(requests.begin(), requests.end(), [&](std::size_t a, std::size_t b) {
      if (submit_ns[a] != submit_ns[b]) return submit_ns[a] < submit_ns[b];
      return ids[a] < ids[b];
    });
  };
  const auto push_arrivals = [&](double stamp_or_own, const std::vector<std::size_t>& requests,
                                 bool requeued) {
    for (std::size_t r : requests) {
      const double stamp = requeued ? stamp_or_own : submit_ns[r];
      push_event(stamp, ev_arrival, static_cast<std::int64_t>(r), requeued ? 1 : 0);
      ++pending_arrivals;
    }
  };

  {
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    canonical(order);
    push_arrivals(0.0, order, /*requeued=*/false);
  }
  {
    std::vector<chaos_event> chaos = config.chaos;
    std::stable_sort(chaos.begin(), chaos.end(), [](const chaos_event& a, const chaos_event& b) {
      if (a.stamp_ns != b.stamp_ns) return a.stamp_ns < b.stamp_ns;
      return a.replica < b.replica;
    });
    for (const chaos_event& c : chaos) {
      PELTA_CHECK_MSG(std::isfinite(c.stamp_ns), "chaos stamps must be finite");
      PELTA_CHECK_MSG(c.replica >= 0 && c.replica < slots,
                      "chaos event targets slot " << c.replica << " of " << slots);
      push_event(c.stamp_ns, c.kill ? ev_kill : ev_restart, c.replica, 0);
    }
  }
  std::int64_t remaining = static_cast<std::int64_t>(n);
  if (scale.enabled && n > 0) push_event(scale.tick_ns, ev_tick, 1, 0);

  std::vector<held_req> held;
  std::int64_t rr_cursor = 0;
  std::int64_t up_streak = 0;
  std::int64_t down_streak = 0;

  const auto flush_held = [&](double stamp) {
    if (held.empty()) return;
    std::vector<std::size_t> requeue;
    std::vector<std::size_t> fresh;
    for (const held_req& h : held) (h.requeued ? requeue : fresh).push_back(h.request);
    held.clear();
    canonical(fresh);
    canonical(requeue);
    // Held-but-never-routed requests keep requeued=false in their decision.
    for (std::size_t r : fresh) {
      push_event(stamp, ev_arrival, static_cast<std::int64_t>(r), 0);
      ++pending_arrivals;
    }
    push_arrivals(stamp, requeue, /*requeued=*/true);
  };

  const auto dispatch_batch = [&](std::int64_t bi) {
    planned_cluster_batch& pb = plan.batches[static_cast<std::size_t>(bi)];
    slot_state& s = state[static_cast<std::size_t>(pb.replica)];
    // Modeled cost only: routing load must never depend on measured enclave
    // charges (the plan stays pure). Execution folds the real charge in.
    pb.planned_exec_start_ns = std::max(pb.batch.close_ns, s.busy_until_ns);
    pb.planned_finish_ns = pb.planned_exec_start_ns + config.server.batch_setup_ns +
                           config.server.compute_ns_per_sample *
                               static_cast<double>(pb.batch.members.size());
    s.busy_until_ns = pb.planned_finish_ns;
    s.inflight.push_back(bi);
    s.open_batch = -1;
    push_event(pb.planned_finish_ns, ev_finish, bi, 0);
  };

  // End-of-stream drain, the shared simclock rule: once no arrival event is
  // pending anywhere, open batches close at their LAST ADMISSION — shutdown
  // never waits out a delay window (same as plan_batches' closed_by_drain).
  const auto drain_open_batches = [&]() {
    for (slot_state& s : state) {
      if (s.open_batch == -1) continue;
      planned_cluster_batch& pb = plan.batches[static_cast<std::size_t>(s.open_batch)];
      pb.batch.closed_by_drain = true;
      pb.batch.close_ns = pb.last_admit_ns;
      dispatch_batch(s.open_batch);
    }
  };

  // Abort a slot's open batch (if any) and return its members; used by
  // kills and autoscale drains.
  const auto abort_open = [&](slot_state& s) {
    std::vector<std::size_t> orphans;
    if (s.open_batch == -1) return orphans;
    planned_cluster_batch& pb = plan.batches[static_cast<std::size_t>(s.open_batch)];
    pb.aborted = true;
    orphans = pb.batch.members;
    s.load -= static_cast<std::int64_t>(orphans.size());
    s.open_batch = -1;
    return orphans;
  };

  const auto route = [&](std::size_t req, double at_ns, bool requeued) {
    if (live == 0) {
      held.push_back(held_req{req, requeued});
      return;
    }
    route_decision d;
    d.request = req;
    d.at_ns = at_ns;
    d.requeued = requeued;
    std::int64_t pick = -1;
    switch (config.policy) {
      case router_policy::round_robin: {
        for (std::int64_t k = 0; k < slots; ++k) {
          const std::int64_t s = (rr_cursor + k) % slots;
          if (!state[static_cast<std::size_t>(s)].alive) continue;
          pick = s;
          rr_cursor = (s + 1) % slots;
          break;
        }
        break;
      }
      case router_policy::least_loaded: {
        for (std::int64_t s = 0; s < slots; ++s) {
          const slot_state& cand = state[static_cast<std::size_t>(s)];
          if (!cand.alive) continue;
          if (pick == -1 || cand.load < state[static_cast<std::size_t>(pick)].load) pick = s;
        }
        break;
      }
      case router_policy::power_of_two: {
        std::vector<std::int64_t> live_slots;
        for (std::int64_t s = 0; s < slots; ++s)
          if (state[static_cast<std::size_t>(s)].alive) live_slots.push_back(s);
        // Forked from the REQUEST id: the same request draws the same
        // candidates no matter when it routes or how events interleaved.
        rng draw = rng{config.router_seed}.fork(static_cast<std::uint64_t>(ids[req]));
        if (live_slots.size() == 1) {
          pick = live_slots.front();
          d.candidate_a = pick;
          d.load_a = state[static_cast<std::size_t>(pick)].load;
        } else {
          const std::int64_t count = static_cast<std::int64_t>(live_slots.size());
          const std::int64_t ai = draw.uniform_int(0, count - 1);
          std::int64_t bi = draw.uniform_int(0, count - 2);
          if (bi >= ai) ++bi;  // distinct candidates
          const std::int64_t a = live_slots[static_cast<std::size_t>(ai)];
          const std::int64_t b = live_slots[static_cast<std::size_t>(bi)];
          d.candidate_a = a;
          d.candidate_b = b;
          d.load_a = state[static_cast<std::size_t>(a)].load;
          d.load_b = state[static_cast<std::size_t>(b)].load;
          if (d.load_a != d.load_b)
            pick = d.load_a < d.load_b ? a : b;
          else
            pick = std::min(a, b);
        }
        break;
      }
    }
    PELTA_CHECK_MSG(pick >= 0, "router found no live replica despite live=" << live);
    d.replica = pick;
    plan.decisions.push_back(d);
    ++plan.routed_per_slot[static_cast<std::size_t>(pick)];
    if (requeued) ++plan.requeued;

    slot_state& s = state[static_cast<std::size_t>(pick)];
    ++s.load;
    if (s.open_batch == -1) {
      const std::int64_t bi = static_cast<std::int64_t>(plan.batches.size());
      planned_cluster_batch pb;
      pb.replica = pick;
      pb.batch.open_ns = at_ns;
      pb.batch.members.push_back(req);
      pb.last_admit_ns = at_ns;
      plan.batches.push_back(std::move(pb));
      s.open_batch = bi;
      ++s.open_gen;
      if (policy.max_batch == 1) {
        plan.batches.back().batch.closed_by_fill = true;
        plan.batches.back().batch.close_ns = at_ns;
        dispatch_batch(bi);
      } else {
        push_event(at_ns + policy.max_delay_ns, ev_deadline, pick, s.open_gen);
      }
    } else {
      planned_cluster_batch& pb = plan.batches[static_cast<std::size_t>(s.open_batch)];
      pb.batch.members.push_back(req);
      pb.last_admit_ns = at_ns;
      if (static_cast<std::int64_t>(pb.batch.members.size()) >= policy.max_batch) {
        pb.batch.closed_by_fill = true;
        pb.batch.close_ns = at_ns;
        dispatch_batch(s.open_batch);
      }
    }
  };

  // Generous divergence guard: every legitimate schedule is far below it
  // (each request contributes a bounded number of events per kill).
  const std::int64_t guard =
      1'000'000 + 64 * (static_cast<std::int64_t>(n) + static_cast<std::int64_t>(config.chaos.size()) + slots);
  std::int64_t processed = 0;

  while (!events.empty()) {
    const core::sim_event ev = events.pop();
    PELTA_CHECK_MSG(++processed <= guard, "cluster planner diverged (event flood)");
    const ev_payload p = payload[static_cast<std::size_t>(ev.seq)];
    switch (static_cast<ev_kind>(ev.id)) {
      case ev_finish: {
        planned_cluster_batch& pb = plan.batches[static_cast<std::size_t>(p.a)];
        if (pb.aborted) break;  // killed mid-flight; members requeued at the kill
        slot_state& s = state[static_cast<std::size_t>(pb.replica)];
        s.inflight.erase(std::remove(s.inflight.begin(), s.inflight.end(), p.a),
                         s.inflight.end());
        s.load -= static_cast<std::int64_t>(pb.batch.members.size());
        for (std::size_t m : pb.batch.members) {
          PELTA_CHECK_MSG(plan.final_replica[m] == -1,
                          "request served twice (workload index " << m << ")");
          plan.final_replica[m] = pb.replica;
        }
        remaining -= static_cast<std::int64_t>(pb.batch.members.size());
        plan.end_ns = std::max(plan.end_ns, ev.stamp_ns);
        break;
      }
      case ev_kill: {
        slot_state& s = state[static_cast<std::size_t>(p.a)];
        PELTA_CHECK_MSG(s.alive, "chaos kills slot " << p.a << " which is not live");
        std::vector<std::size_t> orphans = abort_open(s);
        for (std::int64_t bi : s.inflight) {
          planned_cluster_batch& pb = plan.batches[static_cast<std::size_t>(bi)];
          pb.aborted = true;
          orphans.insert(orphans.end(), pb.batch.members.begin(), pb.batch.members.end());
        }
        s.inflight.clear();
        s.load = 0;
        s.alive = false;
        s.busy_until_ns = ev.stamp_ns;
        --live;
        canonical(orphans);
        push_arrivals(ev.stamp_ns, orphans, /*requeued=*/true);
        break;
      }
      case ev_restart: {
        slot_state& s = state[static_cast<std::size_t>(p.a)];
        PELTA_CHECK_MSG(!s.alive, "chaos restarts slot " << p.a << " which is already live");
        s.alive = true;
        // max: a drained slot's inflight may still be running — the replica
        // pipeline never runs two batches at once, restarted or not.
        s.busy_until_ns = std::max(s.busy_until_ns, ev.stamp_ns);
        ++live;
        plan.peak_live = std::max(plan.peak_live, live);
        flush_held(ev.stamp_ns);
        break;
      }
      case ev_tick: {
        if (remaining == 0) break;  // stream served — the fleet stops ticking
        std::int64_t pending = static_cast<std::int64_t>(held.size());
        for (std::int64_t s = 0; s < slots; ++s)
          if (state[static_cast<std::size_t>(s)].alive)
            pending += state[static_cast<std::size_t>(s)].load;
        bool over = false;
        bool under = false;
        if (live == 0) {
          over = true;  // dead fleet with work pending: infinitely overloaded
        } else {
          const double ratio = static_cast<double>(pending) / static_cast<double>(live);
          over = ratio > scale.high_watermark;
          under = ratio < scale.low_watermark;
        }
        if (over && live < scale.max_replicas) {
          down_streak = 0;
          if (++up_streak >= scale.hysteresis_ticks) {
            up_streak = 0;
            std::int64_t target = -1;
            for (std::int64_t s = 0; s < slots; ++s) {
              if (!state[static_cast<std::size_t>(s)].alive) {
                target = s;
                break;
              }
            }
            if (target != -1) {
              slot_state& s = state[static_cast<std::size_t>(target)];
              s.alive = true;
              s.busy_until_ns = std::max(s.busy_until_ns, ev.stamp_ns);
              s.load = 0;
              ++live;
              plan.peak_live = std::max(plan.peak_live, live);
              plan.scales.push_back(scale_decision{ev.stamp_ns, true, target, live});
              flush_held(ev.stamp_ns);
            }
          }
        } else if (under && live > scale.min_replicas) {
          up_streak = 0;
          if (++down_streak >= scale.hysteresis_ticks) {
            down_streak = 0;
            std::int64_t target = -1;
            for (std::int64_t s = slots - 1; s >= 0; --s) {
              if (state[static_cast<std::size_t>(s)].alive) {
                target = s;
                break;
              }
            }
            // Graceful drain: dispatched batches run to completion; only the
            // open batch's requests re-route.
            slot_state& s = state[static_cast<std::size_t>(target)];
            std::vector<std::size_t> orphans = abort_open(s);
            s.alive = false;
            --live;
            plan.scales.push_back(scale_decision{ev.stamp_ns, false, target, live});
            canonical(orphans);
            push_arrivals(ev.stamp_ns, orphans, /*requeued=*/true);
          }
        } else {
          // In the dead band (or at a fleet-size wall): hysteresis streaks
          // only count CONSECUTIVE out-of-band ticks.
          up_streak = 0;
          down_streak = 0;
        }
        push_event(ev.stamp_ns + scale.tick_ns, ev_tick, p.a + 1, 0);
        break;
      }
      case ev_arrival: {
        --pending_arrivals;
        route(static_cast<std::size_t>(p.a), ev.stamp_ns, p.b != 0);
        // Last pending arrival anywhere: apply the drain rule now (open
        // batches close at their last admission, not their deadline). A
        // later kill requeues into fresh batches.
        if (pending_arrivals == 0) drain_open_batches();
        break;
      }
      case ev_deadline: {
        slot_state& s = state[static_cast<std::size_t>(p.a)];
        if (s.open_batch == -1) break;                // closed by fill/drain/kill
        if (s.open_gen != p.b) break;                 // a different batch is open
        planned_cluster_batch& pb = plan.batches[static_cast<std::size_t>(s.open_batch)];
        pb.batch.close_ns = ev.stamp_ns;  // window expired, stream continues
        dispatch_batch(s.open_batch);
        break;
      }
    }
  }

  PELTA_CHECK_MSG(held.empty(),
                  "cluster schedule ends with " << held.size()
                                                << " request(s) held: every replica was dead "
                                                   "and no restart or scale-up followed");
  PELTA_CHECK_MSG(remaining == 0,
                  "cluster schedule ends with " << remaining << " unserved request(s)");
  return plan;
}

cluster::cluster(shielded_backend& backend, cluster_config config)
    : backend_(&backend), config_(std::move(config)) {}

cluster_report cluster::run(const std::vector<classify_request>& workload) {
  cluster_report report;
  report.requests = static_cast<std::int64_t>(workload.size());
  report.results.resize(workload.size());

  std::vector<double> stamps;
  std::vector<std::int64_t> ids;
  stamps.reserve(workload.size());
  ids.reserve(workload.size());
  for (const classify_request& r : workload) {
    stamps.push_back(r.submit_ns);
    ids.push_back(r.id);
  }
  report.plan = plan_cluster(config_, stamps, ids);

  if (!workload.empty()) {
    report.first_submit_ns = workload.front().submit_ns;
    for (const classify_request& r : workload)
      report.first_submit_ns = std::min(report.first_submit_ns, r.submit_ns);
  }

  const std::int64_t slots = report.plan.slots;
  std::vector<std::vector<std::size_t>> slot_batches(static_cast<std::size_t>(slots));
  for (std::size_t b = 0; b < report.plan.batches.size(); ++b) {
    const planned_cluster_batch& pb = report.plan.batches[b];
    if (pb.aborted) continue;
    slot_batches[static_cast<std::size_t>(pb.replica)].push_back(b);
  }

  report.replicas.resize(static_cast<std::size_t>(slots));
  for (std::int64_t s = 0; s < slots; ++s)
    report.replicas[static_cast<std::size_t>(s)].slot = s;

  const std::int64_t classes = backend_->num_classes();
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(slots));

  // One pool task per replica slot. Each task owns its replica's enclave and
  // hotcall session and walks its batches in plan order — the per-replica
  // equivalent of server::execute_sequential, through the SAME exec.h
  // gather/scatter path. Tasks write disjoint result rows (each request has
  // exactly one surviving batch), so no synchronization is needed; the
  // order-sensitive totals commit in slot order after the join.
  std::vector<task_future> futures(static_cast<std::size_t>(slots));
  for (std::int64_t s = 0; s < slots; ++s) {
    if (slot_batches[static_cast<std::size_t>(s)].empty()) continue;
    futures[static_cast<std::size_t>(s)] = submit_task([&, s] {
      replica_report& rep = report.replicas[static_cast<std::size_t>(s)];
      try {
        tee::enclave enclave;
        enclave_session session{enclave};
        double busy_until_ns = 0.0;
        for (std::size_t b : slot_batches[static_cast<std::size_t>(s)]) {
          const planned_cluster_batch& pb = report.plan.batches[b];
          const planned_batch& batch = pb.batch;
          const std::int64_t size = static_cast<std::int64_t>(batch.members.size());

          std::vector<std::int64_t> batch_ids;
          batch_ids.reserve(batch.members.size());
          for (std::size_t m : batch.members) batch_ids.push_back(workload[m].id);
          const tensor model_batch = exec::gather_batch(workload, batch.members, config_.server);

          session.begin_batch();
          shielded_backend::batch_stats stats;
          tensor logits;
          try {
            logits = backend_->run_batch(model_batch, batch_ids, session.port(), &stats);
          } catch (...) {
            session.end_batch();  // the bracket must close or the session wedges
            throw;
          }
          const enclave_session::batch_charge charge = session.end_batch();
          PELTA_CHECK_MSG(
              logits.ndim() == 2 && logits.size(0) == size && logits.size(1) == classes,
              "backend returned logits " << to_string(logits.shape()) << " for batch of "
                                         << size);

          // Same accounting as the single server, with the replica's own
          // pipeline clock and the MEASURED enclave charge folded in (the
          // plan's finish stamps used the pure model; execution refines).
          const double exec_start_ns = std::max(batch.close_ns, busy_until_ns);
          const double compute_ns = config_.server.batch_setup_ns +
                                    config_.server.compute_ns_per_sample *
                                        static_cast<double>(size);
          const double finish_ns = exec_start_ns + charge.enclave_ns + compute_ns;
          busy_until_ns = finish_ns;

          batch_record rec;
          rec.request_ids = batch_ids;
          rec.close_ns = batch.close_ns;
          rec.exec_start_ns = exec_start_ns;
          rec.enclave_ns = charge.enclave_ns;
          rec.compute_ns = compute_ns;
          rec.hotcalls = charge.hotcalls;
          rep.batches.push_back(std::move(rec));
          rep.requests += size;
          rep.enclave_ns += charge.enclave_ns;
          rep.hotcalls += charge.hotcalls;
          rep.last_finish_ns = finish_ns;

          exec::scatter_batch(report.results, workload, batch, b, logits, stats, charge,
                              exec_start_ns, compute_ns, finish_ns);
        }
      } catch (...) {
        errors[static_cast<std::size_t>(s)] = std::current_exception();
      }
    });
  }

  // Join every replica before rethrowing anything, then commit the
  // order-sensitive totals strictly in slot order — bit-identical at every
  // PELTA_THREADS.
  for (std::int64_t s = 0; s < slots; ++s)
    if (futures[static_cast<std::size_t>(s)].valid()) futures[static_cast<std::size_t>(s)].get();
  for (std::int64_t s = 0; s < slots; ++s)
    if (errors[static_cast<std::size_t>(s)]) std::rethrow_exception(errors[static_cast<std::size_t>(s)]);
  for (const replica_report& rep : report.replicas) {
    report.enclave_ns += rep.enclave_ns;
    report.hotcalls += rep.hotcalls;
    report.last_finish_ns = std::max(report.last_finish_ns, rep.last_finish_ns);
  }
  return report;
}

}  // namespace pelta::serve
