// Multi-replica serving cluster on the shared simulated clock.
//
// Scales serve from one server to N replicas behind a router, with a chaos
// schedule (replica kills/restarts) and a load-based autoscaler — the fleet
// the paper's §VI cost model is really about: per-batch enclave-transition
// amortization only matters once routing, replica failure and scale
// decisions interact under open-loop load.
//
// The same plan/execute split as everything else scheduled in this repo:
//
//   1. plan_cluster — ONE pure, single-threaded event loop over the shared
//      core::event_queue (simclock.h). Arrivals, batch deadlines, modeled
//      batch finishes, chaos kills/restarts and autoscale ticks are all
//      events; equal stamps resolve by a fixed event-kind priority
//      (finish < kill < restart < tick < arrival < deadline — an arrival
//      stamped exactly at a batch's deadline is still admitted, the same
//      inclusive-window rule as plan_batches) and, within a kind, by the
//      queue's push-order tie-break, which the planner feeds in canonical
//      (submit_ns, id) order. The plan fixes every decision: which replica
//      serves which request, every batch's membership and close stamp,
//      which batches a kill aborts, when the autoscaler acts.
//   2. cluster::run — executes the planned batches, one task per replica
//      on the PR 6 pool primitives (submit_task), each replica with its
//      OWN tee::enclave + enclave_session and the shared exec.h
//      gather/scatter helpers. Replica tasks write disjoint result rows;
//      order-sensitive totals commit in replica order after the join — so
//      the report is bit-identical at every PELTA_THREADS, and every request's
//      logits row is bit-identical to the single-server path (batch-size
//      invariance + one shared gather/scatter code path).
//
// Routing LOAD is a plan-time model: requests routed to a replica and not
// yet finished under the modeled batch cost (batch_setup_ns +
// compute_ns_per_sample × size). Measured enclave charges are only known
// at execution and are deliberately excluded from routing — planning must
// stay pure — and folded into the replica clocks when the plan executes.
//
// Chaos semantics (drain-and-requeue — no request is ever lost):
//   * kill(replica, T): the open batch and every dispatched-but-unfinished
//     batch abort; their requests re-route at stamp T, in canonical
//     (submit_ns, id) order, over the remaining live replicas. Requests
//     whose batches finished (modeled) before T keep their results. If no
//     replica is live, requests are HELD and re-routed at the next restart
//     or scale-up; a schedule that ends with held requests is rejected
//     (checked), not silently dropped.
//   * restart(replica, T): the slot rejoins empty and idle at T.
//   * autoscale scale-down drains instead of killing: dispatched batches
//     run to completion, only the open batch's requests re-route.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/batcher.h"
#include "serve/server.h"

namespace pelta::serve {

/// How the router picks a replica for each request.
enum class router_policy {
  round_robin,   ///< rotating cursor over live replicas
  least_loaded,  ///< minimum modeled load, ties to the lowest slot
  /// Power-of-two-choices: two distinct live candidates drawn from
  /// rng{router_seed}.fork(request id) — per-request deterministic, never
  /// dependent on event interleaving — then the less loaded of the pair
  /// (ties to the lower slot).
  power_of_two,
};

/// One scripted chaos action on the simulated clock.
struct chaos_event {
  double stamp_ns = 0.0;
  std::int64_t replica = 0;  ///< slot index
  bool kill = true;          ///< false: restart the (dead) slot
};

/// Queue-depth watermark autoscaler. Evaluated every `tick_ns` on the
/// simulated clock: when modeled load per live replica stays above
/// `high_watermark` for `hysteresis_ticks` CONSECUTIVE ticks, one slot
/// starts; below `low_watermark` as long, one drains (graceful: only the
/// open batch re-routes). A decision resets both streaks — the hysteresis
/// that keeps a square-wave load from flapping the fleet.
struct autoscale_config {
  bool enabled = false;
  double tick_ns = 4e6;
  double high_watermark = 8.0;
  double low_watermark = 1.0;
  std::int64_t hysteresis_ticks = 3;
  std::int64_t min_replicas = 1;
  std::int64_t max_replicas = 8;
};

struct cluster_config {
  /// Slots live at simulated time 0. With the autoscaler off this is also
  /// the fleet size; with it on, slots up to `autoscale.max_replicas` exist
  /// (the ones beyond `replicas` start dead).
  std::int64_t replicas = 2;
  router_policy policy = router_policy::round_robin;
  /// Seed of the power-of-two candidate draws (forked per request id).
  std::uint64_t router_seed = 0x9027e4;
  /// Per-replica server: batching policy, simulated cost model, optional
  /// preprocessor chain. Every replica is configured identically.
  server_config server;
  std::vector<chaos_event> chaos;  ///< any order; sorted by the planner
  autoscale_config autoscale;
};

/// One planned replica batch. `batch.members` are workload indices in
/// admission order; `batch.open_ns`/`close_ns` are stamped with the
/// replica-local admission times (a requeued request re-arrives at its
/// requeue stamp).
struct planned_cluster_batch {
  planned_batch batch;  ///< the shared single-server batch vocabulary
  std::int64_t replica = -1;
  bool aborted = false;  ///< killed mid-flight; members were requeued
  double last_admit_ns = 0.0;
  double planned_exec_start_ns = 0.0;  ///< modeled (no enclave charge)
  double planned_finish_ns = 0.0;
};

/// One routing decision, in simulated chronological order.
struct route_decision {
  std::size_t request = 0;  ///< workload index
  double at_ns = 0.0;
  std::int64_t replica = -1;
  bool requeued = false;  ///< re-route after a kill / drain
  // Power-of-two candidates and their modeled loads at decision time
  // (candidate_b = -1 when only one replica was live; both -1 for the
  // other policies).
  std::int64_t candidate_a = -1;
  std::int64_t candidate_b = -1;
  std::int64_t load_a = 0;
  std::int64_t load_b = 0;
};

/// One autoscaler action.
struct scale_decision {
  double at_ns = 0.0;
  bool up = false;
  std::int64_t replica = -1;  ///< slot started or drained
  std::int64_t live_after = 0;
};

struct cluster_plan {
  std::vector<planned_cluster_batch> batches;  ///< in creation (open) order
  std::vector<route_decision> decisions;
  std::vector<scale_decision> scales;
  /// Per workload index: the slot whose surviving batch serves it.
  std::vector<std::int64_t> final_replica;
  /// Routing decisions per slot, requeues included.
  std::vector<std::int64_t> routed_per_slot;
  std::int64_t requests = 0;
  std::int64_t requeued = 0;  ///< re-route decisions after kills / drains
  std::int64_t slots = 0;
  std::int64_t peak_live = 0;
  double end_ns = 0.0;  ///< modeled finish of the last batch
};

/// Plan the whole cluster schedule. Pure and single-threaded: depends only
/// on the config and the (submit_ns, id) workload — never on wall-clock,
/// thread count or model values. `ids` must have one entry per stamp (the
/// router's per-request fork key and the canonical tie-break).
cluster_plan plan_cluster(const cluster_config& config,
                          const std::vector<double>& submit_ns,
                          const std::vector<std::int64_t>& ids);

/// What one replica slot did, on the simulated clock.
struct replica_report {
  std::int64_t slot = -1;
  std::vector<batch_record> batches;  ///< executed (non-aborted) batches
  std::int64_t requests = 0;          ///< requests it served to completion
  double enclave_ns = 0.0;
  std::int64_t hotcalls = 0;
  double last_finish_ns = 0.0;
};

struct cluster_report {
  /// One result per request, in the caller's submission order — each row
  /// bit-identical to the single-server path's.
  std::vector<classify_result> results;
  std::vector<replica_report> replicas;  ///< one per slot, slot order
  cluster_plan plan;                     ///< the fixed schedule that ran
  std::int64_t requests = 0;
  double first_submit_ns = 0.0;
  double last_finish_ns = 0.0;  ///< executed makespan end (enclave included)
  double enclave_ns = 0.0;
  std::int64_t hotcalls = 0;

  double simulated_span_ns() const { return last_finish_ns - first_submit_ns; }
};

class cluster {
public:
  /// The backend must outlive the cluster and be safe to run one batch per
  /// replica concurrently (every repo backend is: forwards build fresh
  /// graphs over const parameters, and each replica stores through its own
  /// enclave). Replica enclaves are owned per run.
  cluster(shielded_backend& backend, cluster_config config);

  /// Plan and execute a complete workload. One pool task per replica slot;
  /// bit-identical report at every PELTA_THREADS.
  cluster_report run(const std::vector<classify_request>& workload);

  const cluster_config& config() const { return config_; }

private:
  shielded_backend* backend_;
  cluster_config config_;
};

}  // namespace pelta::serve
