// Batched shielded-inference server.
//
// Many producers submit single-sample classify requests; the dynamic
// batcher (batcher.h) coalesces them under a {max_batch, max_delay_ns}
// policy; the server drives each batch through ONE forward pass and ONE
// shield application of its backend — turning many concurrent requests
// into few large GEMMs, which is where the blocked kernels (PR 4) and the
// thread pool (PR 2) pay off — and scatters per-request results.
//
// Two clocks, deliberately separate:
//   * the SIMULATED clock orders batches and prices latency (arrival
//     stamps, the enclave cost model's ns, a modeled compute duration) —
//     bit-identical for every PELTA_THREADS value, enforced by
//     tests/test_serve.cpp;
//   * WALL-CLOCK throughput is measured outside, by bench/bench_serving,
//     which gates batched >= serial wall throughput and >= 3x simulated.
//
// Wall execution is PIPELINED: up to `pipeline_depth` batches are in
// flight at once, with gather/preprocess and scatter/argmax overlapping
// across batches as pool tasks while the enclave forward+shield stage
// stays serialized in batch order through the single enclave_session (it
// is stateful — begin_batch/end_batch brackets never interleave). Results
// are committed strictly in batch order (the replay-in-order rule
// fl::federation::run_round also follows), so every report field is
// bit-identical to the strictly sequential chain — only wall-clock
// changes; the simulated-clock model is untouched.
//
// Determinism contract: batches execute in planned order, each request's
// logits row is bit-identical to a batch-1 forward of that sample, work
// inside a batch parallelizes only through the bit-stable kernel/pool
// layers, and randomized policies (ensemble member choice, preprocessor
// chains) fork their stream from the request id — never from batch
// composition, thread count, or wall-clock.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "defenses/preprocessor.h"
#include "models/compiler.h"
#include "models/ensemble.h"
#include "models/model.h"
#include "serve/batcher.h"
#include "serve/request.h"
#include "serve/request_queue.h"
#include "serve/session.h"

namespace pelta::serve {

/// Model adapter the server drives: one forward + one shield application
/// per call, masked tensors leaving through `sink`.
class shielded_backend {
public:
  virtual ~shielded_backend() = default;

  struct batch_stats {
    std::int64_t masked_transforms = 0;
    std::int64_t shield_bytes = 0;
  };

  virtual std::int64_t num_classes() const = 0;

  /// images [B,C,H,W] -> logits [B, classes]. `ids` are the request ids of
  /// the rows (the fork streams for per-request randomized policies).
  virtual tensor run_batch(const tensor& images, const std::vector<std::int64_t>& ids,
                           tee::secure_store& sink, batch_stats* stats) = 0;
};

/// One shielded model: batch forward, shield once, one masked_view per
/// batch (shield::shield_batch).
class model_backend final : public shielded_backend {
public:
  explicit model_backend(const models::model& m, std::string key_prefix = "serve/");

  std::int64_t num_classes() const override { return model_->num_classes(); }
  tensor run_batch(const tensor& images, const std::vector<std::int64_t>& ids,
                   tee::secure_store& sink, batch_stats* stats) override;

private:
  const models::model* model_;
  std::string key_prefix_;
};

/// One model compiled to int8 at construction (models/compiler.h):
/// calibrates activation scales over `calibration_images`, keeps the
/// shield-frontier prefix fp32 by default (override via `opts` — the
/// placement sweep's knob), then serves exactly like model_backend: same
/// shield application, same simulated-clock accounting; only the wall-clock
/// forward runs the fused int8 kernels.
class quantized_backend final : public shielded_backend {
public:
  quantized_backend(const models::model& source, const tensor& calibration_images,
                    models::quantize_options opts = {}, std::string key_prefix = "serve/");

  std::int64_t num_classes() const override { return inner_.num_classes(); }
  tensor run_batch(const tensor& images, const std::vector<std::int64_t>& ids,
                   tee::secure_store& sink, batch_stats* stats) override;

  /// The compiled model (e.g. for accuracy checks against the source).
  const models::quantized_model& model() const { return *model_; }
  /// What the compile pass quantized vs kept fp32.
  const models::quantize_report& report() const { return report_; }

private:
  models::quantize_report report_;
  std::unique_ptr<models::quantized_model> model_;  ///< must outlive inner_
  model_backend inner_;
};

/// Random-selection ensemble (MULDEF policy): each request's member is
/// drawn from rng{seed}.fork(request id); the batch is partitioned by
/// member and each member runs one batched forward + shield over its
/// sub-batch.
class ensemble_backend final : public shielded_backend {
public:
  ensemble_backend(const models::random_selection_ensemble& ensemble, std::uint64_t seed,
                   std::string key_prefix = "serve/");

  std::int64_t num_classes() const override { return ensemble_->first().num_classes(); }
  tensor run_batch(const tensor& images, const std::vector<std::int64_t>& ids,
                   tee::secure_store& sink, batch_stats* stats) override;

private:
  const models::random_selection_ensemble* ensemble_;
  std::uint64_t seed_;
  std::string key_prefix_;
};

struct server_config {
  batch_policy policy;

  /// Modeled per-sample forward cost on the simulated clock (same default
  /// as fl/async_config::compute_ns_per_sample).
  double compute_ns_per_sample = 2e5;
  /// Modeled per-batch fixed cost (graph construction, dispatch) — the part
  /// batching amortizes on the simulated clock.
  double batch_setup_ns = 1e6;

  /// Optional software-defense chain applied per request before batching;
  /// sample streams fork from the request id under `chain_seed`.
  const defenses::preprocessor_chain* chain = nullptr;
  std::uint64_t chain_seed = 0x5e17e;

  /// Max batches in flight in the wall-clock pipelined executor: gathers
  /// run up to this many batches ahead of the serialized enclave stage
  /// (bounding the gathered-tensor memory), scatters trail behind it.
  /// 1 = the strictly sequential gather -> enclave -> scatter chain;
  /// 0 picks an automatic depth from the thread count. Every depth yields
  /// a bit-identical serving_report (enforced by tests/test_serve.cpp).
  std::int64_t pipeline_depth = 0;
};

/// What one executed batch did, on the simulated clock.
struct batch_record {
  std::vector<std::int64_t> request_ids;
  double close_ns = 0.0;
  double exec_start_ns = 0.0;
  double enclave_ns = 0.0;
  double compute_ns = 0.0;
  std::int64_t hotcalls = 0;
};

struct serving_report {
  /// One result per request, in the caller's submission order.
  std::vector<classify_result> results;
  std::vector<batch_record> batches;
  std::int64_t requests = 0;
  double first_submit_ns = 0.0;
  double last_finish_ns = 0.0;       ///< simulated makespan end
  double enclave_ns = 0.0;           ///< total modeled TEE cost of this run
  std::int64_t hotcalls = 0;

  double simulated_span_ns() const { return last_finish_ns - first_submit_ns; }
  double mean_batch_size() const {
    return batches.empty() ? 0.0
                           : static_cast<double>(requests) / static_cast<double>(batches.size());
  }
};

class server {
public:
  /// The backend and enclave must outlive the server. Attaches a hotcall
  /// session to the enclave for the server's lifetime.
  server(shielded_backend& backend, tee::enclave& enclave, server_config config);

  /// Deterministic path: plan and execute a complete workload. Results come
  /// back in `workload` order; batches execute in planned dispatch order.
  serving_report run(const std::vector<classify_request>& workload);

  /// Live ingress for producer threads.
  request_queue& queue() { return queue_; }

  /// Drain everything currently queued and serve it. The drained set is
  /// canonically re-sorted by (submit_ns, id) first, so the outcome depends
  /// only on the requests, not on producer interleaving.
  serving_report drain();

  /// Like drain(), but blocks until at least one request is queued or the
  /// queue is closed.
  serving_report drain_wait();

  const enclave_session& session() const { return session_; }
  const server_config& config() const { return config_; }

private:
  serving_report execute(const std::vector<classify_request>& requests,
                         const batch_plan& plan);
  serving_report execute_sequential(const std::vector<classify_request>& requests,
                                    const batch_plan& plan);
  serving_report execute_pipelined(const std::vector<classify_request>& requests,
                                   const batch_plan& plan, std::int64_t depth);

  shielded_backend* backend_;
  server_config config_;
  enclave_session session_;
  request_queue queue_;
};

}  // namespace pelta::serve
