// Thread-safe ingress queue: many producer threads submit single-sample
// classify requests; the server drains them in bulk.
//
// Determinism note: the queue preserves push order only per producer. The
// server therefore never batches in pop order — a drained set is re-sorted
// canonically by (submit_ns, id) before planning, so results depend only on
// the requests themselves, never on producer interleaving.
#pragma once

#include <optional>
#include <vector>

#include "core/sync.h"
#include "serve/request.h"

namespace pelta::serve {

class request_queue {
public:
  /// Enqueue one request. Returns false — and counts the request in
  /// rejected() — when the queue is already closed: a producer racing
  /// shutdown gets a graceful, observable rejection, never an abort.
  /// Non-finite submit stamps still throw (a caller bug, not a race).
  bool push(classify_request request);

  /// Remove and return every queued request (possibly empty). Never blocks.
  std::vector<classify_request> drain();

  /// Block until at least one request is queued or the queue is closed;
  /// then drain. Returns an empty vector only when closed and empty.
  std::vector<classify_request> wait_drain();

  /// Close the queue: pending requests stay drainable, new pushes are
  /// rejected (push returns false), and blocked wait_drain() calls wake up.
  void close();

  bool closed() const;
  std::int64_t pending() const;
  std::int64_t total_pushed() const;  ///< lifetime counter of accepted pushes
  std::int64_t rejected() const;      ///< pushes refused after close()

private:
  mutable sync::mutex mutex_;
  sync::condition_variable ready_;
  std::vector<classify_request> pending_ PELTA_GUARDED_BY(mutex_);
  std::int64_t total_pushed_ PELTA_GUARDED_BY(mutex_) = 0;
  std::int64_t rejected_ PELTA_GUARDED_BY(mutex_) = 0;
  bool closed_ PELTA_GUARDED_BY(mutex_) = false;
};

/// THE canonical dispatch order of a drained request set: (submit_ns, id),
/// stable. server::drain() applies it before planning so results depend
/// only on the requests, never on producer interleaving.
std::vector<classify_request> canonicalize(std::vector<classify_request> requests);

}  // namespace pelta::serve
