// Request/response types of the batched shielded-inference serving runtime.
//
// The deployment story of the paper is a fleet of clients issuing classify
// calls against a TEE-shielded model. A request is one [C,H,W] sample plus
// its arrival stamp on the *simulated* clock (like fl/async, so batching
// decisions and latency accounting are bit-reproducible and independent of
// wall-clock and thread count); a result carries the per-request view of
// the batch that served it: logits, prediction, the batch's shield/mask
// statistics, and a latency breakdown whose components sum to the
// end-to-end latency (enforced by tests/test_serve.cpp).
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace pelta::serve {

/// Dynamic-batching policy: a batch closes when it holds `max_batch`
/// requests, or `max_delay_ns` after it opened (whichever comes first);
/// at end of stream a partial batch drains immediately.
struct batch_policy {
  std::int64_t max_batch = 32;
  double max_delay_ns = 2e6;  ///< 2 ms coalescing window
};

/// One single-sample classify call from a client.
struct classify_request {
  /// Caller-assigned: the tie-break after submit_ns in the canonical
  /// dispatch order, and the stream randomized policies (ensemble member
  /// draw, preprocessor chains) fork from. Must be unique within a drained
  /// set for full producer-interleaving independence — two requests that
  /// share BOTH submit_ns and id retain queue push order.
  std::int64_t id = 0;
  tensor image;             ///< [C,H,W]
  double submit_ns = 0.0;   ///< simulated arrival time
};

/// Where a request's end-to-end latency went. All values are simulated ns;
/// queue + batch + enclave + compute == finish - submit.
struct latency_breakdown {
  double queue_ns = 0.0;    ///< submit -> batch close (coalescing wait)
  double batch_ns = 0.0;    ///< batch close -> execution start (head-of-line wait)
  double enclave_ns = 0.0;  ///< modeled TEE cost of the batch's shield session
  double compute_ns = 0.0;  ///< modeled forward cost of the batch
  double total_ns() const { return queue_ns + batch_ns + enclave_ns + compute_ns; }
};

/// One served request.
struct classify_result {
  std::int64_t request_id = -1;
  std::int64_t predicted = -1;
  tensor logits;  ///< [classes] — bit-identical to a batch-1 forward of the sample

  // The batch that served this request.
  std::int64_t batch_index = -1;
  std::int64_t batch_size = 0;
  std::int64_t masked_transforms = 0;   ///< shielded-layer mask stats of that batch
  std::int64_t shield_bytes_batch = 0;  ///< enclave bytes its shield application placed

  double submit_ns = 0.0;
  double finish_ns = 0.0;
  latency_breakdown latency;
};

}  // namespace pelta::serve
