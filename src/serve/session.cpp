#include "serve/session.h"

#include "tensor/check.h"

namespace pelta::serve {

enclave_session::enclave_session(tee::enclave& e)
    : enclave_{&e}, server_{e}, port_{server_} {}

void enclave_session::begin_batch() {
  PELTA_CHECK_MSG(!in_batch_, "enclave_session batch already open");
  in_batch_ = true;
  ns_mark_ = enclave_->statistics().simulated_ns;
  calls_mark_ = server_.statistics().calls;
  stores_mark_ = enclave_->statistics().stores;
  bytes_mark_ = enclave_->statistics().bytes_in;
}

enclave_session::batch_charge enclave_session::end_batch() {
  PELTA_CHECK_MSG(in_batch_, "enclave_session batch not open");
  in_batch_ = false;
  batch_charge charge;
  charge.enclave_ns = enclave_->statistics().simulated_ns - ns_mark_;
  charge.hotcalls = server_.statistics().calls - calls_mark_;
  charge.stores = enclave_->statistics().stores - stores_mark_;
  charge.bytes_in = enclave_->statistics().bytes_in - bytes_mark_;

  ++totals_.batches;
  totals_.hotcalls += charge.hotcalls;
  totals_.stores += charge.stores;
  totals_.bytes_in += charge.bytes_in;
  totals_.enclave_ns += charge.enclave_ns;
  return charge;
}

}  // namespace pelta::serve
