#include "serve/request_queue.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"

namespace pelta::serve {

std::vector<classify_request> canonicalize(std::vector<classify_request> requests) {
  std::stable_sort(requests.begin(), requests.end(),
                   [](const classify_request& a, const classify_request& b) {
                     return a.submit_ns < b.submit_ns ||
                            (a.submit_ns == b.submit_ns && a.id < b.id);
                   });
  return requests;
}

bool request_queue::push(classify_request request) {
  // Reject non-finite stamps at ingress: canonicalize() sorts by submit_ns
  // and a NaN would void the comparator's strict weak ordering.
  PELTA_CHECK_MSG(std::isfinite(request.submit_ns),
                  "request " << request.id << " has a non-finite submit_ns");
  {
    const sync::lock_guard lock{mutex_};
    if (closed_) {
      ++rejected_;
      return false;
    }
    pending_.push_back(std::move(request));
    ++total_pushed_;
  }
  ready_.notify_one();
  return true;
}

std::vector<classify_request> request_queue::drain() {
  const sync::lock_guard lock{mutex_};
  std::vector<classify_request> out;
  out.swap(pending_);
  return out;
}

std::vector<classify_request> request_queue::wait_drain() {
  sync::unique_lock lock{mutex_};
  while (pending_.empty() && !closed_) ready_.wait(lock);
  std::vector<classify_request> out;
  out.swap(pending_);
  return out;
}

void request_queue::close() {
  {
    const sync::lock_guard lock{mutex_};
    closed_ = true;
  }
  ready_.notify_all();
}

bool request_queue::closed() const {
  const sync::lock_guard lock{mutex_};
  return closed_;
}

std::int64_t request_queue::pending() const {
  const sync::lock_guard lock{mutex_};
  return static_cast<std::int64_t>(pending_.size());
}

std::int64_t request_queue::total_pushed() const {
  const sync::lock_guard lock{mutex_};
  return total_pushed_;
}

std::int64_t request_queue::rejected() const {
  const sync::lock_guard lock{mutex_};
  return rejected_;
}

}  // namespace pelta::serve
