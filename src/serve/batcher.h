// Dynamic batching on the simulated clock.
//
// plan_batches is the single source of truth for batch composition: a pure
// event loop over arrival stamps (no wall-clock, no threads — the same
// split as fl/async's plan/execute pair), so the batches a workload forms
// are bit-reproducible and the property tests can enumerate the policy's
// boundary behaviour exactly.
//
// Policy semantics, in arrival order (equal stamps tie-break by request id
// when the planner is given ids — server::run's path, the same order
// canonicalize() uses — else by index; FIFO either way, no request ever
// overtakes an earlier one):
//   * a batch OPENS at the arrival of the first request it admits;
//   * it admits arrivals while it holds fewer than max_batch requests and
//     the arrival is within open + max_delay_ns (boundary inclusive);
//   * it CLOSES at the max_batch-th arrival (closed_by_fill), at
//     open + max_delay_ns when a later request proves the stream continues
//     past the window, or at its last member's arrival when the stream ends
//     first (closed_by_drain — shutdown never waits out a delay window).
#pragma once

#include <cstdint>
#include <vector>

#include "serve/request.h"
#include "tensor/rng.h"

namespace pelta::serve {

/// One planned batch: `members` are indices into the arrival array, in
/// arrival order.
struct planned_batch {
  std::vector<std::size_t> members;
  double open_ns = 0.0;   ///< arrival of the first member
  double close_ns = 0.0;  ///< when the batch stopped admitting and was dispatched
  bool closed_by_fill = false;   ///< reached max_batch
  bool closed_by_drain = false;  ///< end of stream before fill or deadline
};

struct batch_plan {
  std::vector<planned_batch> batches;  ///< in dispatch order
  std::int64_t requests = 0;  ///< arrivals offered (admitted + rejected)
  /// Arrivals stamped after the shutdown boundary (0 without one). Counted,
  /// never silently lost: no `members` entry covers a rejected index.
  std::int64_t rejected = 0;
};

/// Plan the batches a stream of arrivals forms under `policy`. `submit_ns`
/// need not be sorted; requests are processed by (submit_ns, index).
batch_plan plan_batches(const std::vector<double>& submit_ns, const batch_policy& policy);

/// Same, but equal-stamp ties break by request id (then by index for
/// duplicate ids) — the SAME order canonicalize() establishes, so a
/// caller-supplied workload batches identically to a canonicalized drain
/// no matter how producers interleaved it. server::run uses this form.
batch_plan plan_batches(const std::vector<double>& submit_ns,
                        const std::vector<std::int64_t>& ids, const batch_policy& policy);

/// Same, with an explicit shutdown stamp — the shared simulated-clock drain
/// rule (core/simclock.h), boundary INCLUSIVE: an arrival stamped exactly
/// AT `shutdown_ns` still batches (so shutdown == last arrival reproduces
/// the unbounded plan exactly), arrivals after it are counted in
/// `batch_plan::rejected` and never planned. The cluster tests use this
/// form to reproduce one replica's stream cut at its kill stamp. `+inf` is
/// the overload above.
batch_plan plan_batches(const std::vector<double>& submit_ns,
                        const std::vector<std::int64_t>& ids, const batch_policy& policy,
                        double shutdown_ns);

/// Seeded open-loop arrival process: `n` stamps with exponential
/// inter-arrival gaps of mean `mean_gap_ns` (a Poisson stream, the standard
/// open-loop serving workload), starting at 0. Pure and single-threaded.
std::vector<double> make_poisson_arrivals(std::int64_t n, double mean_gap_ns,
                                          std::uint64_t seed);

}  // namespace pelta::serve
