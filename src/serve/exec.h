// Shared batch-execution helpers of the serving runtime.
//
// gather/scatter used to live in server.cpp's anonymous namespace; the
// cluster runtime (cluster.h) executes the same three-stage batch chain on
// every replica, so the helpers moved here — ONE code path, ONE bit layout.
// A request gathered and scattered by a cluster replica goes through
// byte-for-byte the same code as on the single server, which is half of
// the cluster-vs-single-server logit bit-identity contract (the other half
// is the kernels' batch-size invariance).
#pragma once

#include <vector>

#include "serve/batcher.h"
#include "serve/server.h"

namespace pelta::serve::exec {

/// Gather the batch's request images into one [B,C,H,W] model batch,
/// applying the software-defense chain in place when one is configured.
/// Pool-parallel and deterministic: each row writes only its own slice and
/// forks its chain stream from the request id, so a request's preprocessed
/// pixels depend on neither batch composition nor thread count.
tensor gather_batch(const std::vector<classify_request>& requests,
                    const std::vector<std::size_t>& members, const server_config& config);

/// Scatter one executed batch into the per-request result rows. Writes only
/// the rows `batch.members` owns into the pre-sized results vector, so
/// scatters of different batches (pipeline slots, cluster replicas) can run
/// concurrently.
void scatter_batch(std::vector<classify_result>& results,
                   const std::vector<classify_request>& requests, const planned_batch& batch,
                   std::size_t batch_index, const tensor& logits,
                   const shielded_backend::batch_stats& stats,
                   const enclave_session::batch_charge& charge, double exec_start_ns,
                   double compute_ns, double finish_ns);

/// Pre-sized report skeleton: one result slot per request, first_submit_ns
/// fixed to the earliest arrival.
serving_report make_report_header(const std::vector<classify_request>& requests);

}  // namespace pelta::serve::exec
