#include "serve/batcher.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/check.h"

namespace pelta::serve {

batch_plan plan_batches(const std::vector<double>& submit_ns, const batch_policy& policy) {
  return plan_batches(submit_ns, {}, policy);
}

batch_plan plan_batches(const std::vector<double>& submit_ns,
                        const std::vector<std::int64_t>& ids, const batch_policy& policy) {
  PELTA_CHECK_MSG(policy.max_batch >= 1, "batch_policy.max_batch must be >= 1");
  PELTA_CHECK_MSG(policy.max_delay_ns >= 0.0, "batch_policy.max_delay_ns must be >= 0");
  const std::size_t n = submit_ns.size();
  PELTA_CHECK_MSG(ids.empty() || ids.size() == n,
                  "plan_batches needs one id per arrival stamp (or none)");
  // A NaN stamp would break the sort's strict weak ordering (UB) and an
  // infinite one the deadline arithmetic — reject both before sorting.
  for (std::size_t i = 0; i < n; ++i)
    PELTA_CHECK_MSG(std::isfinite(submit_ns[i]),
                    "request " << i << " has a non-finite submit_ns");

  // Canonical FIFO order: by arrival stamp; equal stamps by id when ids
  // are given (matching canonicalize()), and by index as the last resort.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (submit_ns[a] != submit_ns[b]) return submit_ns[a] < submit_ns[b];
    return !ids.empty() && ids[a] < ids[b];
  });

  batch_plan plan;
  plan.requests = static_cast<std::int64_t>(n);
  std::size_t i = 0;
  while (i < n) {
    planned_batch batch;
    batch.open_ns = submit_ns[order[i]];
    const double deadline = batch.open_ns + policy.max_delay_ns;
    std::size_t j = i;
    while (j < n && static_cast<std::int64_t>(j - i) < policy.max_batch &&
           submit_ns[order[j]] <= deadline)
      batch.members.push_back(order[j++]);

    batch.closed_by_fill = static_cast<std::int64_t>(j - i) == policy.max_batch;
    batch.closed_by_drain = !batch.closed_by_fill && j == n;
    if (batch.closed_by_fill || batch.closed_by_drain)
      batch.close_ns = submit_ns[order[j - 1]];  // dispatch at the closing arrival
    else
      batch.close_ns = deadline;  // the stream continues past the window
    plan.batches.push_back(std::move(batch));
    i = j;
  }
  return plan;
}

std::vector<double> make_poisson_arrivals(std::int64_t n, double mean_gap_ns,
                                          std::uint64_t seed) {
  PELTA_CHECK_MSG(n >= 0 && mean_gap_ns >= 0.0, "bad arrival-process parameters");
  rng gen{seed};
  std::vector<double> arrivals(static_cast<std::size_t>(n));
  double clock = 0.0;
  for (double& t : arrivals) {
    // Inverse-CDF exponential draw. uniform_real_distribution<float> may
    // return its upper bound 1.0 outright (LWG 2524); clamp below 1 so the
    // log stays finite.
    const double u = std::min(static_cast<double>(gen.uniform()), 1.0 - 1e-9);
    clock += -mean_gap_ns * std::log1p(-u);
    t = clock;
  }
  return arrivals;
}

}  // namespace pelta::serve
