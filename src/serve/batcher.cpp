#include "serve/batcher.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/simclock.h"
#include "tensor/check.h"

namespace pelta::serve {

batch_plan plan_batches(const std::vector<double>& submit_ns, const batch_policy& policy) {
  return plan_batches(submit_ns, {}, policy);
}

batch_plan plan_batches(const std::vector<double>& submit_ns,
                        const std::vector<std::int64_t>& ids, const batch_policy& policy) {
  return plan_batches(submit_ns, ids, policy, std::numeric_limits<double>::infinity());
}

batch_plan plan_batches(const std::vector<double>& submit_ns,
                        const std::vector<std::int64_t>& ids, const batch_policy& policy,
                        double shutdown_ns) {
  PELTA_CHECK_MSG(policy.max_batch >= 1, "batch_policy.max_batch must be >= 1");
  PELTA_CHECK_MSG(policy.max_delay_ns >= 0.0, "batch_policy.max_delay_ns must be >= 0");
  const std::size_t n = submit_ns.size();
  PELTA_CHECK_MSG(ids.empty() || ids.size() == n,
                  "plan_batches needs one id per arrival stamp (or none)");
  // A NaN stamp would break the queue order (UB in a sort, nonsense in a
  // heap) and an infinite one the deadline arithmetic — reject both.
  for (std::size_t i = 0; i < n; ++i)
    PELTA_CHECK_MSG(std::isfinite(submit_ns[i]),
                    "request " << i << " has a non-finite submit_ns");

  // The shared simulated-clock queue (core/simclock.h) IS the canonical
  // FIFO order: events pop by (arrival stamp, id, push order), i.e. equal
  // stamps break by id when ids are given (matching canonicalize()) and by
  // index as the last resort — the same total order the stable sort this
  // replaced produced. seq doubles as the request index because every push
  // call consumes one, even a rejected push. The queue's inclusive
  // shutdown boundary is the drain rule: an arrival stamped exactly AT
  // shutdown still batches; later arrivals are rejected and counted.
  core::event_queue arrivals{shutdown_ns};
  for (std::size_t i = 0; i < n; ++i)
    arrivals.push(submit_ns[i], ids.empty() ? 0 : ids[i]);

  batch_plan plan;
  plan.requests = static_cast<std::int64_t>(n);
  plan.rejected = arrivals.rejected();
  while (!arrivals.empty()) {
    planned_batch batch;
    const core::sim_event first = arrivals.pop();
    batch.open_ns = first.stamp_ns;
    batch.members.push_back(static_cast<std::size_t>(first.seq));
    const double deadline = batch.open_ns + policy.max_delay_ns;
    double last_arrival_ns = first.stamp_ns;
    while (!arrivals.empty() &&
           static_cast<std::int64_t>(batch.members.size()) < policy.max_batch &&
           arrivals.peek().stamp_ns <= deadline) {
      const core::sim_event next = arrivals.pop();
      batch.members.push_back(static_cast<std::size_t>(next.seq));
      last_arrival_ns = next.stamp_ns;
    }

    batch.closed_by_fill = static_cast<std::int64_t>(batch.members.size()) == policy.max_batch;
    batch.closed_by_drain = !batch.closed_by_fill && arrivals.empty();
    if (batch.closed_by_fill || batch.closed_by_drain)
      batch.close_ns = last_arrival_ns;  // dispatch at the closing arrival
    else
      batch.close_ns = deadline;  // the stream continues past the window
    plan.batches.push_back(std::move(batch));
  }
  return plan;
}

std::vector<double> make_poisson_arrivals(std::int64_t n, double mean_gap_ns,
                                          std::uint64_t seed) {
  PELTA_CHECK_MSG(n >= 0 && mean_gap_ns >= 0.0, "bad arrival-process parameters");
  rng gen{seed};
  std::vector<double> arrivals(static_cast<std::size_t>(n));
  double at_ns = 0.0;
  for (double& t : arrivals) {
    // Inverse-CDF exponential draw. uniform_real_distribution<float> may
    // return its upper bound 1.0 outright (LWG 2524); clamp below 1 so the
    // log stays finite.
    const double u = std::min(static_cast<double>(gen.uniform()), 1.0 - 1e-9);
    at_ns += -mean_gap_ns * std::log1p(-u);
    t = at_ns;
  }
  return arrivals;
}

}  // namespace pelta::serve
