#include "serve/server.h"

#include <algorithm>
#include <array>
#include <utility>

#include "shield/masked_view.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace pelta::serve {

namespace {

// Gather the batch's request images into one [B,C,H,W] model batch,
// applying the software-defense chain in place when one is configured.
// Pool-parallel and deterministic: each row writes only its own slice and
// forks its chain stream from the request id, so a request's preprocessed
// pixels depend on neither batch composition nor thread count — and the
// chain output lands directly in the model batch, no intermediate copies.
tensor gather_batch(const std::vector<classify_request>& requests,
                    const std::vector<std::size_t>& members, const server_config& config) {
  PELTA_CHECK(!members.empty());
  const tensor& first = requests[members.front()].image;
  PELTA_CHECK_MSG(first.ndim() == 3, "classify_request.image must be [C,H,W]");
  shape_t batched{static_cast<std::int64_t>(members.size())};
  for (std::int64_t d : first.shape()) batched.push_back(d);
  tensor out{batched};

  const bool chained = config.chain != nullptr && !config.chain->empty();
  const rng chain_root{config.chain_seed};
  const std::int64_t stride = first.numel();
  parallel_for(static_cast<std::int64_t>(members.size()), [&](std::int64_t r) {
    const classify_request& request = requests[members[static_cast<std::size_t>(r)]];
    PELTA_CHECK_MSG(request.image.shape() == first.shape(),
                    "request image shape mismatch inside one batch");
    auto row = out.data().begin() + r * stride;
    if (chained) {
      rng gen = chain_root.fork(static_cast<std::uint64_t>(request.id));
      const tensor pre = config.chain->apply(request.image, gen);
      std::copy(pre.data().begin(), pre.data().end(), row);
    } else {
      std::copy(request.image.data().begin(), request.image.data().end(), row);
    }
  });
  return out;
}

}  // namespace

// ---- backends ---------------------------------------------------------------

model_backend::model_backend(const models::model& m, std::string key_prefix)
    : model_{&m}, key_prefix_{std::move(key_prefix) + m.name() + "/"} {}

tensor model_backend::run_batch(const tensor& images, const std::vector<std::int64_t>& /*ids*/,
                                tee::secure_store& sink, batch_stats* stats) {
  models::forward_pass fp = model_->forward(images, ad::norm_mode::eval);
  const shield::masked_view view =
      shield::shield_batch(fp.graph, model_->shield_frontier_tags(), sink, key_prefix_);
  // The prediction must come from the clear, deep part of the model — the
  // shield may never swallow the serving output.
  PELTA_CHECK_MSG(view.value_accessible(fp.logits),
                  "shield frontier reached the logits; nothing left to serve");
  if (stats != nullptr) {
    stats->masked_transforms =
        static_cast<std::int64_t>(view.report().masked_transforms.size());
    stats->shield_bytes = view.report().total_bytes();
  }
  return fp.graph.value(fp.logits);
}

ensemble_backend::ensemble_backend(const models::random_selection_ensemble& ensemble,
                                   std::uint64_t seed, std::string key_prefix)
    : ensemble_{&ensemble}, seed_{seed}, key_prefix_{std::move(key_prefix)} {
  PELTA_CHECK_MSG(ensemble.first().num_classes() == ensemble.second().num_classes(),
                  "ensemble members disagree on the class count");
}

tensor ensemble_backend::run_batch(const tensor& images, const std::vector<std::int64_t>& ids,
                                   tee::secure_store& sink, batch_stats* stats) {
  const std::int64_t b = images.size(0);
  PELTA_CHECK_MSG(static_cast<std::int64_t>(ids.size()) == b,
                  "ensemble_backend needs one request id per batch row");
  const std::int64_t stride = images.numel() / b;
  // Per-request member draw, forked by request id — stable no matter which
  // batch the request landed in.
  const std::array<std::vector<std::int64_t>, 2> member_rows =
      models::select_members(b, seed_, ids);

  tensor logits{shape_t{b, num_classes()}};
  batch_stats total;
  for (std::size_t m = 0; m < 2; ++m) {
    const std::vector<std::int64_t>& rows = member_rows[m];
    if (rows.empty()) continue;
    const models::model& member = m == 0 ? ensemble_->first() : ensemble_->second();

    shape_t sub_shape{static_cast<std::int64_t>(rows.size())};
    for (std::int64_t d = 1; d < images.ndim(); ++d) sub_shape.push_back(images.size(d));
    tensor sub{sub_shape};
    for (std::size_t r = 0; r < rows.size(); ++r)
      std::copy(images.data().begin() + rows[r] * stride,
                images.data().begin() + (rows[r] + 1) * stride,
                sub.data().begin() + static_cast<std::int64_t>(r) * stride);

    models::forward_pass fp = member.forward(sub, ad::norm_mode::eval);
    const shield::masked_view view = shield::shield_batch(
        fp.graph, member.shield_frontier_tags(), sink, key_prefix_ + member.name() + "/");
    PELTA_CHECK_MSG(view.value_accessible(fp.logits),
                    "shield frontier reached the logits of ensemble member '"
                        << member.name() << "'; nothing left to serve");
    total.masked_transforms +=
        static_cast<std::int64_t>(view.report().masked_transforms.size());
    total.shield_bytes += view.report().total_bytes();

    const tensor& sub_logits = fp.graph.value(fp.logits);
    const std::int64_t classes = num_classes();
    for (std::size_t r = 0; r < rows.size(); ++r)
      std::copy(sub_logits.data().begin() + static_cast<std::int64_t>(r) * classes,
                sub_logits.data().begin() + static_cast<std::int64_t>(r + 1) * classes,
                logits.data().begin() + rows[r] * classes);
  }
  if (stats != nullptr) *stats = total;
  return logits;
}

// ---- server -----------------------------------------------------------------

server::server(shielded_backend& backend, tee::enclave& enclave, server_config config)
    : backend_{&backend}, config_{std::move(config)}, session_{enclave} {}

serving_report server::run(const std::vector<classify_request>& workload) {
  std::vector<double> submit_ns(workload.size());
  for (std::size_t i = 0; i < workload.size(); ++i) submit_ns[i] = workload[i].submit_ns;
  return execute(workload, plan_batches(submit_ns, config_.policy));
}

serving_report server::drain() { return run(canonicalize(queue_.drain())); }

serving_report server::drain_wait() { return run(canonicalize(queue_.wait_drain())); }

serving_report server::execute(const std::vector<classify_request>& requests,
                               const batch_plan& plan) {
  serving_report report;
  report.requests = static_cast<std::int64_t>(requests.size());
  report.results.resize(requests.size());
  if (requests.empty()) return report;

  report.first_submit_ns = requests.front().submit_ns;
  for (const classify_request& r : requests)
    report.first_submit_ns = std::min(report.first_submit_ns, r.submit_ns);

  const std::int64_t classes = backend_->num_classes();
  double busy_until_ns = 0.0;

  for (std::size_t b = 0; b < plan.batches.size(); ++b) {
    const planned_batch& batch = plan.batches[b];
    const std::int64_t size = static_cast<std::int64_t>(batch.members.size());

    std::vector<std::int64_t> ids;
    ids.reserve(batch.members.size());
    for (std::size_t m : batch.members) ids.push_back(requests[m].id);
    const tensor model_batch = gather_batch(requests, batch.members, config_);

    // One forward + one shield application for the whole batch; the session
    // meters exactly what this batch charged the TEE cost model. A backend
    // throw (e.g. enclave capacity) must still close the accounting bracket
    // or the session would wedge on the next batch.
    session_.begin_batch();
    shielded_backend::batch_stats stats;
    tensor logits;
    try {
      logits = backend_->run_batch(model_batch, ids, session_.port(), &stats);
    } catch (...) {
      session_.end_batch();
      throw;
    }
    const enclave_session::batch_charge charge = session_.end_batch();
    PELTA_CHECK_MSG(logits.ndim() == 2 && logits.size(0) == size && logits.size(1) == classes,
                    "backend returned logits " << to_string(logits.shape()) << " for batch of "
                                               << size);

    // Simulated-clock accounting: the server is a single pipeline — a batch
    // starts when it closed AND the previous batch finished.
    const double exec_start_ns = std::max(batch.close_ns, busy_until_ns);
    const double compute_ns =
        config_.batch_setup_ns + config_.compute_ns_per_sample * static_cast<double>(size);
    const double finish_ns = exec_start_ns + charge.enclave_ns + compute_ns;
    busy_until_ns = finish_ns;
    report.last_finish_ns = finish_ns;
    report.enclave_ns += charge.enclave_ns;
    report.hotcalls += charge.hotcalls;

    batch_record rec;
    rec.request_ids = ids;
    rec.close_ns = batch.close_ns;
    rec.exec_start_ns = exec_start_ns;
    rec.enclave_ns = charge.enclave_ns;
    rec.compute_ns = compute_ns;
    rec.hotcalls = charge.hotcalls;
    report.batches.push_back(std::move(rec));

    // Scatter per-request results.
    const tensor preds = ops::argmax_lastdim(logits);
    for (std::size_t r = 0; r < batch.members.size(); ++r) {
      const std::size_t m = batch.members[r];
      classify_result& out = report.results[m];
      out.request_id = requests[m].id;
      out.predicted = static_cast<std::int64_t>(preds[static_cast<std::int64_t>(r)]);
      out.logits = tensor{shape_t{classes}};
      std::copy(logits.data().begin() + static_cast<std::int64_t>(r) * classes,
                logits.data().begin() + static_cast<std::int64_t>(r + 1) * classes,
                out.logits.data().begin());
      out.batch_index = static_cast<std::int64_t>(b);
      out.batch_size = size;
      out.masked_transforms = stats.masked_transforms;
      out.shield_bytes_batch = stats.shield_bytes;
      out.submit_ns = requests[m].submit_ns;
      out.finish_ns = finish_ns;
      out.latency.queue_ns = batch.close_ns - requests[m].submit_ns;
      out.latency.batch_ns = exec_start_ns - batch.close_ns;
      out.latency.enclave_ns = charge.enclave_ns;
      out.latency.compute_ns = compute_ns;
    }
  }
  return report;
}

}  // namespace pelta::serve
