#include "serve/server.h"

#include <algorithm>
#include <array>
#include <utility>

#include "serve/exec.h"
#include "shield/masked_view.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace pelta::serve {

// gather_batch / scatter_batch / make_report_header moved to serve/exec.h:
// the cluster runtime executes the same per-batch chain on every replica,
// and sharing the helpers is what keeps cluster and single-server results
// bit-identical — one code path, one bit layout.
using exec::gather_batch;
using exec::make_report_header;
using exec::scatter_batch;

// ---- backends ---------------------------------------------------------------

model_backend::model_backend(const models::model& m, std::string key_prefix)
    : model_{&m}, key_prefix_{std::move(key_prefix) + m.name() + "/"} {}

tensor model_backend::run_batch(const tensor& images, const std::vector<std::int64_t>& /*ids*/,
                                tee::secure_store& sink, batch_stats* stats) {
  models::forward_pass fp = model_->forward(images, ad::norm_mode::eval);
  const shield::masked_view view =
      shield::shield_batch(fp.graph, model_->shield_frontier_tags(), sink, key_prefix_);
  // The prediction must come from the clear, deep part of the model — the
  // shield may never swallow the serving output.
  PELTA_CHECK_MSG(view.value_accessible(fp.logits),
                  "shield frontier reached the logits; nothing left to serve");
  if (stats != nullptr) {
    stats->masked_transforms =
        static_cast<std::int64_t>(view.report().masked_transforms.size());
    stats->shield_bytes = view.report().total_bytes();
  }
  return fp.graph.value(fp.logits);
}

quantized_backend::quantized_backend(const models::model& source,
                                     const tensor& calibration_images,
                                     models::quantize_options opts, std::string key_prefix)
    : model_{models::quantize_model(source, calibration_images, opts, &report_)},
      inner_{*model_, std::move(key_prefix)} {}

tensor quantized_backend::run_batch(const tensor& images, const std::vector<std::int64_t>& ids,
                                    tee::secure_store& sink, batch_stats* stats) {
  return inner_.run_batch(images, ids, sink, stats);
}

ensemble_backend::ensemble_backend(const models::random_selection_ensemble& ensemble,
                                   std::uint64_t seed, std::string key_prefix)
    : ensemble_{&ensemble}, seed_{seed}, key_prefix_{std::move(key_prefix)} {
  PELTA_CHECK_MSG(ensemble.first().num_classes() == ensemble.second().num_classes(),
                  "ensemble members disagree on the class count");
}

tensor ensemble_backend::run_batch(const tensor& images, const std::vector<std::int64_t>& ids,
                                   tee::secure_store& sink, batch_stats* stats) {
  const std::int64_t b = images.size(0);
  PELTA_CHECK_MSG(static_cast<std::int64_t>(ids.size()) == b,
                  "ensemble_backend needs one request id per batch row");
  const std::int64_t stride = images.numel() / b;
  // Per-request member draw, forked by request id — stable no matter which
  // batch the request landed in.
  const std::array<std::vector<std::int64_t>, 2> member_rows =
      models::select_members(b, seed_, ids);

  tensor logits{shape_t{b, num_classes()}};
  batch_stats total;
  for (std::size_t m = 0; m < 2; ++m) {
    const std::vector<std::int64_t>& rows = member_rows[m];
    if (rows.empty()) continue;
    const models::model& member = m == 0 ? ensemble_->first() : ensemble_->second();

    shape_t sub_shape{static_cast<std::int64_t>(rows.size())};
    for (std::int64_t d = 1; d < images.ndim(); ++d) sub_shape.push_back(images.size(d));
    tensor sub{sub_shape};
    for (std::size_t r = 0; r < rows.size(); ++r)
      std::copy(images.data().begin() + rows[r] * stride,
                images.data().begin() + (rows[r] + 1) * stride,
                sub.data().begin() + static_cast<std::int64_t>(r) * stride);

    models::forward_pass fp = member.forward(sub, ad::norm_mode::eval);
    const shield::masked_view view = shield::shield_batch(
        fp.graph, member.shield_frontier_tags(), sink, key_prefix_ + member.name() + "/");
    PELTA_CHECK_MSG(view.value_accessible(fp.logits),
                    "shield frontier reached the logits of ensemble member '"
                        << member.name() << "'; nothing left to serve");
    total.masked_transforms +=
        static_cast<std::int64_t>(view.report().masked_transforms.size());
    total.shield_bytes += view.report().total_bytes();

    const tensor& sub_logits = fp.graph.value(fp.logits);
    const std::int64_t classes = num_classes();
    for (std::size_t r = 0; r < rows.size(); ++r)
      std::copy(sub_logits.data().begin() + static_cast<std::int64_t>(r) * classes,
                sub_logits.data().begin() + static_cast<std::int64_t>(r + 1) * classes,
                logits.data().begin() + rows[r] * classes);
  }
  if (stats != nullptr) *stats = total;
  return logits;
}

// ---- server -----------------------------------------------------------------

server::server(shielded_backend& backend, tee::enclave& enclave, server_config config)
    : backend_{&backend}, config_{std::move(config)}, session_{enclave} {}

serving_report server::run(const std::vector<classify_request>& workload) {
  // Plan with the id tie-break so equal-submit_ns requests batch in the
  // same canonical (submit_ns, id) order canonicalize() establishes —
  // never in the caller's producer-interleaving order.
  std::vector<double> submit_ns(workload.size());
  std::vector<std::int64_t> ids(workload.size());
  for (std::size_t i = 0; i < workload.size(); ++i) {
    submit_ns[i] = workload[i].submit_ns;
    ids[i] = workload[i].id;
  }
  return execute(workload, plan_batches(submit_ns, ids, config_.policy));
}

serving_report server::drain() { return run(canonicalize(queue_.drain())); }

serving_report server::drain_wait() { return run(canonicalize(queue_.wait_drain())); }

serving_report server::execute(const std::vector<classify_request>& requests,
                               const batch_plan& plan) {
  std::int64_t depth = config_.pipeline_depth;
  if (depth <= 0)
    depth = std::min<std::int64_t>(4, std::max<std::int64_t>(2, parallel_thread_count()));
  if (depth <= 1 || plan.batches.size() <= 1) return execute_sequential(requests, plan);
  return execute_pipelined(requests, plan, depth);
}

serving_report server::execute_sequential(const std::vector<classify_request>& requests,
                                          const batch_plan& plan) {
  serving_report report = make_report_header(requests);
  if (requests.empty()) return report;

  const std::int64_t classes = backend_->num_classes();
  double busy_until_ns = 0.0;

  for (std::size_t b = 0; b < plan.batches.size(); ++b) {
    const planned_batch& batch = plan.batches[b];
    const std::int64_t size = static_cast<std::int64_t>(batch.members.size());

    std::vector<std::int64_t> ids;
    ids.reserve(batch.members.size());
    for (std::size_t m : batch.members) ids.push_back(requests[m].id);
    const tensor model_batch = gather_batch(requests, batch.members, config_);

    // One forward + one shield application for the whole batch; the session
    // meters exactly what this batch charged the TEE cost model. A backend
    // throw (e.g. enclave capacity) must still close the accounting bracket
    // or the session would wedge on the next batch.
    session_.begin_batch();
    shielded_backend::batch_stats stats;
    tensor logits;
    try {
      logits = backend_->run_batch(model_batch, ids, session_.port(), &stats);
    } catch (...) {
      session_.end_batch();
      throw;
    }
    const enclave_session::batch_charge charge = session_.end_batch();
    PELTA_CHECK_MSG(logits.ndim() == 2 && logits.size(0) == size && logits.size(1) == classes,
                    "backend returned logits " << to_string(logits.shape()) << " for batch of "
                                               << size);

    // Simulated-clock accounting: the server is a single pipeline — a batch
    // starts when it closed AND the previous batch finished.
    const double exec_start_ns = std::max(batch.close_ns, busy_until_ns);
    const double compute_ns =
        config_.batch_setup_ns + config_.compute_ns_per_sample * static_cast<double>(size);
    const double finish_ns = exec_start_ns + charge.enclave_ns + compute_ns;
    busy_until_ns = finish_ns;
    report.last_finish_ns = finish_ns;
    report.enclave_ns += charge.enclave_ns;
    report.hotcalls += charge.hotcalls;

    batch_record rec;
    rec.request_ids = ids;
    rec.close_ns = batch.close_ns;
    rec.exec_start_ns = exec_start_ns;
    rec.enclave_ns = charge.enclave_ns;
    rec.compute_ns = compute_ns;
    rec.hotcalls = charge.hotcalls;
    report.batches.push_back(std::move(rec));

    scatter_batch(report.results, requests, batch, b, logits, stats, charge, exec_start_ns,
                  compute_ns, finish_ns);
  }
  return report;
}

serving_report server::execute_pipelined(const std::vector<classify_request>& requests,
                                         const batch_plan& plan, std::int64_t depth) {
  serving_report report = make_report_header(requests);
  if (requests.empty()) return report;

  const std::int64_t classes = backend_->num_classes();
  double busy_until_ns = 0.0;
  const std::size_t total = plan.batches.size();
  report.batches.reserve(total);

  // One slot per in-flight batch. `depth` gathers run ahead of the
  // serialized enclave stage; the +1 spare lets the slot's previous
  // occupant finish its scatter while the next gather is already needed.
  struct slot {
    std::size_t batch = 0;
    task_future gather;
    task_future scatter;
    tensor model_batch;
    tensor logits;
    std::vector<std::int64_t> ids;
    shielded_backend::batch_stats stats;
    enclave_session::batch_charge charge;
    double exec_start_ns = 0.0;
    double compute_ns = 0.0;
    double finish_ns = 0.0;
  };
  std::vector<slot> ring(std::min(static_cast<std::size_t>(depth) + 1, total));

  // A failed stage stops the pipeline; after every in-flight task has
  // retired, the error the strictly sequential chain would have hit first
  // — smallest batch, earliest stage — is the one rethrown.
  enum : int { gather_stage = 0, enclave_stage = 1, scatter_stage = 2 };
  struct failure {
    std::size_t batch;
    int stage;
    std::exception_ptr error;
  };
  std::vector<failure> failures;
  const auto note = [&failures](std::size_t batch, int stage) {
    failures.push_back({batch, stage, std::current_exception()});
  };

  const auto submit_gather = [&](std::size_t b) {
    slot& s = ring[b % ring.size()];
    s.batch = b;
    s.gather = submit_task([this, &requests, &plan, &s] {
      s.model_batch = gather_batch(requests, plan.batches[s.batch].members, config_);
    });
  };
  std::size_t next_gather = std::min(static_cast<std::size_t>(depth), total);
  for (std::size_t b = 0; b < next_gather; ++b) submit_gather(b);

  for (std::size_t b = 0; b < total && failures.empty(); ++b) {
    slot& s = ring[b % ring.size()];
    const planned_batch& batch = plan.batches[b];
    const std::int64_t size = static_cast<std::int64_t>(batch.members.size());
    try {
      s.gather.get();
    } catch (...) {
      note(b, gather_stage);
      break;
    }

    s.ids.clear();
    s.ids.reserve(batch.members.size());
    for (std::size_t m : batch.members) s.ids.push_back(requests[m].id);

    // The serialized stage: the session brackets must close even when the
    // backend throws mid-pipeline, or the next batch (or the next run)
    // would wedge on a dangling begin_batch.
    session_.begin_batch();
    try {
      s.logits = backend_->run_batch(s.model_batch, s.ids, session_.port(), &s.stats);
    } catch (...) {
      session_.end_batch();
      note(b, enclave_stage);
      break;
    }
    s.charge = session_.end_batch();
    try {
      PELTA_CHECK_MSG(s.logits.ndim() == 2 && s.logits.size(0) == size &&
                          s.logits.size(1) == classes,
                      "backend returned logits " << to_string(s.logits.shape())
                                                 << " for batch of " << size);
    } catch (...) {
      note(b, enclave_stage);
      break;
    }

    // Commit strictly in batch order: the simulated single-pipeline clock,
    // the session accounting and the batch records are identical to the
    // sequential chain no matter how the wall stages overlapped.
    s.exec_start_ns = std::max(batch.close_ns, busy_until_ns);
    s.compute_ns =
        config_.batch_setup_ns + config_.compute_ns_per_sample * static_cast<double>(size);
    s.finish_ns = s.exec_start_ns + s.charge.enclave_ns + s.compute_ns;
    busy_until_ns = s.finish_ns;
    report.last_finish_ns = s.finish_ns;
    report.enclave_ns += s.charge.enclave_ns;
    report.hotcalls += s.charge.hotcalls;

    batch_record rec;
    rec.request_ids = s.ids;
    rec.close_ns = batch.close_ns;
    rec.exec_start_ns = s.exec_start_ns;
    rec.enclave_ns = s.charge.enclave_ns;
    rec.compute_ns = s.compute_ns;
    rec.hotcalls = s.charge.hotcalls;
    report.batches.push_back(std::move(rec));

    s.scatter = submit_task([&report, &requests, &plan, &s] {
      scatter_batch(report.results, requests, plan.batches[s.batch], s.batch, s.logits,
                    s.stats, s.charge, s.exec_start_ns, s.compute_ns, s.finish_ns);
    });

    if (next_gather < total) {
      slot& n = ring[next_gather % ring.size()];
      // The slot's previous batch left the enclave long ago; only its
      // scatter may still own the slot's tensors. Wait it out, then reuse.
      if (n.scatter.valid()) {
        try {
          n.scatter.get();
        } catch (...) {
          note(n.batch, scatter_stage);
          break;
        }
      }
      submit_gather(next_gather++);
    }
  }

  // Join every task still in flight — they touch slot and report memory —
  // before the report (or an exception) leaves this frame.
  for (slot& s : ring) {
    if (s.gather.valid()) {
      try {
        s.gather.get();
      } catch (...) {
        note(s.batch, gather_stage);
      }
    }
    if (s.scatter.valid()) {
      try {
        s.scatter.get();
      } catch (...) {
        note(s.batch, scatter_stage);
      }
    }
  }
  if (!failures.empty()) {
    const auto first = std::min_element(failures.begin(), failures.end(),
                                        [](const failure& a, const failure& b) {
                                          return a.batch != b.batch ? a.batch < b.batch
                                                                    : a.stage < b.stage;
                                        });
    std::rethrow_exception(first->error);
  }
  return report;
}

}  // namespace pelta::serve
