// Per-enclave serving session: switchless TEE accounting charged per batch.
//
// bench_overhead_tee shows the two ways shield traffic can pay for the
// boundary: ecall-style stores (two ~4 µs world switches per masked tensor
// — what core/pelta.h's per-request classify() pays) versus HotCalls
// (~0.6 µs per store with a worker parked inside the enclave). A serving
// session keeps one hotcall worker attached for its whole lifetime, so a
// batch of 32 requests pays ONE shield application's worth of handoffs
// instead of 32 ecall-style shields — the amortization the related TEE-FL
// systems (GradSec, Flatee) report as the condition for shielded layers to
// be affordable under load.
//
// Accounting is delta-based: begin_batch()/end_batch() bracket one batch's
// shield application and return exactly what that batch charged the
// enclave's simulated cost model. The deltas depend only on store counts
// and byte sizes, so they are bit-reproducible across runs and thread
// counts.
#pragma once

#include <cstdint>

#include "tee/enclave.h"
#include "tee/hotcalls.h"
#include "tee/secure_store.h"

namespace pelta::serve {

class enclave_session {
public:
  /// Attaches a hotcall worker to `e` (which must be in the normal world)
  /// for the session's lifetime. The enclave must outlive the session.
  explicit enclave_session(tee::enclave& e);

  /// Write port for shield::pelta_shield_tags / shield::shield_batch:
  /// every store is one switchless hot call.
  tee::secure_store& port() { return port_; }

  tee::enclave& owner() { return *enclave_; }

  /// What one bracketed batch charged the cost model.
  struct batch_charge {
    double enclave_ns = 0.0;    ///< modeled latency (handoffs + marshalled bytes)
    std::int64_t hotcalls = 0;  ///< switchless calls the batch issued
    std::int64_t stores = 0;    ///< enclave entries it (re)placed
    std::int64_t bytes_in = 0;  ///< bytes marshalled into secure memory
  };

  void begin_batch();
  batch_charge end_batch();  ///< also folds the delta into the totals

  struct totals {
    std::int64_t batches = 0;
    std::int64_t hotcalls = 0;
    std::int64_t stores = 0;
    std::int64_t bytes_in = 0;
    double enclave_ns = 0.0;
  };
  const totals& accumulated() const { return totals_; }

private:
  tee::enclave* enclave_;
  tee::hotcall_server server_;
  tee::hotcall_store port_;
  bool in_batch_ = false;
  double ns_mark_ = 0.0;
  std::int64_t calls_mark_ = 0;
  std::int64_t stores_mark_ = 0;
  std::int64_t bytes_mark_ = 0;
  totals totals_;
};

}  // namespace pelta::serve
