#include "serve/exec.h"

#include <algorithm>

#include "tensor/check.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace pelta::serve::exec {

tensor gather_batch(const std::vector<classify_request>& requests,
                    const std::vector<std::size_t>& members, const server_config& config) {
  PELTA_CHECK(!members.empty());
  const tensor& first = requests[members.front()].image;
  PELTA_CHECK_MSG(first.ndim() == 3, "classify_request.image must be [C,H,W]");
  shape_t batched{static_cast<std::int64_t>(members.size())};
  for (std::int64_t d : first.shape()) batched.push_back(d);
  tensor out{batched};

  const bool chained = config.chain != nullptr && !config.chain->empty();
  const rng chain_root{config.chain_seed};
  const std::int64_t stride = first.numel();
  parallel_for(static_cast<std::int64_t>(members.size()), [&](std::int64_t r) {
    const classify_request& request = requests[members[static_cast<std::size_t>(r)]];
    PELTA_CHECK_MSG(request.image.shape() == first.shape(),
                    "request image shape mismatch inside one batch");
    auto row = out.data().begin() + r * stride;
    if (chained) {
      rng gen = chain_root.fork(static_cast<std::uint64_t>(request.id));
      const tensor pre = config.chain->apply(request.image, gen);
      std::copy(pre.data().begin(), pre.data().end(), row);
    } else {
      std::copy(request.image.data().begin(), request.image.data().end(), row);
    }
  });
  return out;
}

void scatter_batch(std::vector<classify_result>& results,
                   const std::vector<classify_request>& requests, const planned_batch& batch,
                   std::size_t batch_index, const tensor& logits,
                   const shielded_backend::batch_stats& stats,
                   const enclave_session::batch_charge& charge, double exec_start_ns,
                   double compute_ns, double finish_ns) {
  const std::int64_t classes = logits.size(1);
  const tensor preds = ops::argmax_lastdim(logits);
  for (std::size_t r = 0; r < batch.members.size(); ++r) {
    const std::size_t m = batch.members[r];
    classify_result& out = results[m];
    out.request_id = requests[m].id;
    out.predicted = static_cast<std::int64_t>(preds[static_cast<std::int64_t>(r)]);
    out.logits = tensor{shape_t{classes}};
    std::copy(logits.data().begin() + static_cast<std::int64_t>(r) * classes,
              logits.data().begin() + static_cast<std::int64_t>(r + 1) * classes,
              out.logits.data().begin());
    out.batch_index = static_cast<std::int64_t>(batch_index);
    out.batch_size = static_cast<std::int64_t>(batch.members.size());
    out.masked_transforms = stats.masked_transforms;
    out.shield_bytes_batch = stats.shield_bytes;
    out.submit_ns = requests[m].submit_ns;
    out.finish_ns = finish_ns;
    out.latency.queue_ns = batch.close_ns - requests[m].submit_ns;
    out.latency.batch_ns = exec_start_ns - batch.close_ns;
    out.latency.enclave_ns = charge.enclave_ns;
    out.latency.compute_ns = compute_ns;
  }
}

serving_report make_report_header(const std::vector<classify_request>& requests) {
  serving_report report;
  report.requests = static_cast<std::int64_t>(requests.size());
  report.results.resize(requests.size());
  if (requests.empty()) return report;
  report.first_submit_ns = requests.front().submit_ns;
  for (const classify_request& r : requests)
    report.first_submit_ns = std::min(report.first_submit_ns, r.submit_ns);
  return report;
}

}  // namespace pelta::serve::exec
