#include "shield/baselines.h"

namespace pelta::shield {

shield_report param_gradient_shield(const ad::graph& g, tee::enclave* enclave,
                                    const std::string& key_prefix) {
  shield_report report;
  for (ad::node_id id = 0; id < g.node_count(); ++id) {
    const ad::node& n = g.at(id);
    if (n.kind != ad::node_kind::parameter) continue;
    report.masked_side.push_back(id);
    report.bytes_parameters += n.value.byte_size();
    report.masked_param_scalars += n.value.numel();
    if (enclave != nullptr) enclave->store(key_prefix + "p" + std::to_string(id), n.value);
    if (n.has_adjoint) {
      report.bytes_gradients += n.adjoint.byte_size();
      if (enclave != nullptr)
        enclave->store(key_prefix + "dp" + std::to_string(id), n.adjoint);
    }
  }
  // masked_input intentionally stays invalid_node: ∇ₓL is not protected.
  return report;
}

bool input_gradient_exposed(const ad::graph& g, const shield_report& report) {
  const std::vector<ad::node_id> inputs = g.inputs();
  for (ad::node_id x : inputs)
    if (report.is_masked(x)) return false;
  return !inputs.empty();
}

}  // namespace pelta::shield
