// PELTA shielding — Algorithm 1 of the paper.
//
// Given a computational graph G, a Select()-ed frontier (the deepest nodes
// to mask) and a TEE enclave E, the shield:
//   * masks every input-dependent vertex from the frontier back to the
//     model input (their values u_i and adjoints dL/du_i move into E),
//   * records every local Jacobian J_{j→i} along input-dependent edges
//     (Alg. 1 lines 8–9) as enclave-resident,
//   * masks the non-input-dependent arguments of masked transforms —
//     weights, biases, and parameter-derived vertices such as the
//     weight-standardized kernel — because e.g. J = W for a linear map
//     would let the attacker reconstruct the hidden Jacobians (§IV-B),
//   * masks the input adjoint dL/dx itself (the quantity gradient-based
//     evasion attacks need).
//
// What remains for the attacker is the adjoint δ_{L+1} of the shallowest
// clear layer, exposed via masked_view::clear_adjoint().
#pragma once

#include <string>
#include <vector>

#include "autodiff/graph.h"
#include "tee/enclave.h"

namespace pelta::tee {
class secure_store;  // tee/secure_store.h — write port used by batch serving
}

namespace pelta::shield {

/// Enclave-resident local Jacobian J_{j→i} (symbolic record; the dense
/// matrix is never materialized, matching how frameworks back-propagate).
struct jacobian_record {
  ad::node_id from = ad::invalid_node;  ///< parent j (input-dependent)
  ad::node_id to = ad::invalid_node;    ///< child i (masked transform)
  std::string op_name;                  ///< transform computing u_i
  std::int64_t rows = 0;                ///< numel(u_i)
  std::int64_t cols = 0;                ///< numel(u_j)
};

/// Everything Algorithm 1 decided and accounted.
struct shield_report {
  std::vector<ad::node_id> masked_transforms;  ///< input-dependent masked vertices
  ad::node_id masked_input = ad::invalid_node; ///< the input leaf (adjoint masked)
  std::vector<ad::node_id> masked_side;        ///< masked params / param-derived vertices
  std::vector<jacobian_record> jacobians;

  // Table I accounting (fp32 bytes, worst case: nothing flushed).
  std::int64_t bytes_activations = 0;  ///< values of masked transforms
  std::int64_t bytes_gradients = 0;    ///< adjoints of masked vertices + dL/dx
  std::int64_t bytes_parameters = 0;   ///< masked weights/biases/derived kernels
  std::int64_t masked_param_scalars = 0;  ///< numerator of "shielded portion"

  std::int64_t total_bytes() const {
    return bytes_activations + bytes_gradients + bytes_parameters;
  }
  bool is_masked(ad::node_id id) const;
};

/// Run Algorithm 1 from frontier node ids. When `enclave` is non-null the
/// masked tensors are stored into it under `key_prefix` (idempotent keys, so
/// iterated attacks model the paper's worst case of an unflushed enclave).
/// Direct enclave stores are ecall-style: every one pays a world-switch
/// pair. Batch-serving callers pass a tee::secure_store instead (below) to
/// route the same stores through a switchless hot-call session.
shield_report pelta_shield(const ad::graph& g, const std::vector<ad::node_id>& frontier,
                           tee::enclave* enclave, const std::string& key_prefix = "");

/// Convenience: resolve a model's frontier tags first.
shield_report pelta_shield_tags(const ad::graph& g, const std::vector<std::string>& frontier_tags,
                                tee::enclave* enclave, const std::string& key_prefix = "");

/// Same walk, but masked tensors leave through an abstract write port
/// (tee/secure_store.h): ecall_store reproduces the per-operation charging
/// above, hotcall_store amortizes a whole batch under one enclave session.
/// (For an accounting-only run pass `enclave = nullptr` above.)
shield_report pelta_shield(const ad::graph& g, const std::vector<ad::node_id>& frontier,
                           tee::secure_store& sink, const std::string& key_prefix = "");
shield_report pelta_shield_tags(const ad::graph& g, const std::vector<std::string>& frontier_tags,
                                tee::secure_store& sink, const std::string& key_prefix = "");

}  // namespace pelta::shield
