#include "shield/policy.h"

namespace pelta::shield {

std::vector<ad::node_id> select_first_k_transforms(const ad::graph& g, std::int64_t k) {
  PELTA_CHECK_MSG(k >= 1, "shield depth must be >= 1");
  std::vector<ad::node_id> all;
  for (ad::node_id id = 0; id < g.node_count(); ++id) {
    const ad::node& n = g.at(id);
    if (n.kind == ad::node_kind::transform && n.input_dependent) all.push_back(id);
  }
  PELTA_CHECK_MSG(static_cast<std::int64_t>(all.size()) >= k,
                  "graph has only " << all.size() << " input-dependent transforms, need " << k);
  // Select the k-th as the frontier; Algorithm 1's walk masks everything
  // shallower automatically.
  return {all[static_cast<std::size_t>(k - 1)]};
}

std::vector<ad::node_id> select_up_to_tag(const ad::graph& g, const std::string& tag) {
  const ad::node_id id = g.find_tag(tag);
  PELTA_CHECK_MSG(id != ad::invalid_node, "tag '" << tag << "' not found");
  return {id};
}

}  // namespace pelta::shield
