#include "shield/masked_view.h"

namespace pelta::shield {

masked_view::masked_view(const ad::graph& g, shield_report report)
    : graph_{&g}, report_{std::move(report)} {
  masked_.assign(static_cast<std::size_t>(g.node_count()), false);
  for (ad::node_id id : report_.masked_transforms) masked_[static_cast<std::size_t>(id)] = true;
  for (ad::node_id id : report_.masked_side) masked_[static_cast<std::size_t>(id)] = true;
  if (report_.masked_input != ad::invalid_node)
    masked_[static_cast<std::size_t>(report_.masked_input)] = true;
}

bool masked_view::value_accessible(ad::node_id id) const {
  if (id == report_.masked_input) return true;  // the attacker's own sample
  return !masked_[static_cast<std::size_t>(id)];
}

bool masked_view::adjoint_accessible(ad::node_id id) const {
  return !masked_[static_cast<std::size_t>(id)];
}

const tensor& masked_view::value(ad::node_id id) const {
  if (!value_accessible(id))
    throw tee::enclave_access_error{"PELTA: value of node " + std::to_string(id) +
                                    " (" + graph_->at(id).tag + ") is enclave-resident"};
  return graph_->value(id);
}

const tensor& masked_view::adjoint(ad::node_id id) const {
  if (!adjoint_accessible(id))
    throw tee::enclave_access_error{"PELTA: adjoint of node " + std::to_string(id) +
                                    " (" + graph_->at(id).tag + ") is enclave-resident"};
  return graph_->adjoint(id);
}

const tensor& masked_view::input_gradient() const {
  PELTA_CHECK(report_.masked_input != ad::invalid_node);
  return adjoint(report_.masked_input);  // throws: the input adjoint is masked
}

std::vector<ad::node_id> masked_view::clear_frontier() const {
  std::vector<ad::node_id> out;
  for (ad::node_id id = 0; id < graph_->node_count(); ++id) {
    if (masked_[static_cast<std::size_t>(id)]) continue;
    const ad::node& n = graph_->at(id);
    if (n.kind != ad::node_kind::transform) continue;
    for (ad::node_id p : n.parents)
      if (masked_[static_cast<std::size_t>(p)]) {
        out.push_back(id);
        break;
      }
  }
  return out;  // already in ascending (topological) id order
}

ad::node_id masked_view::clear_frontier_node() const {
  const std::vector<ad::node_id> frontier = clear_frontier();
  PELTA_CHECK_MSG(!frontier.empty(), "no clear frontier — the whole graph is masked?");
  return frontier.front();
}

const tensor& masked_view::clear_adjoint() const {
  return graph_->adjoint(clear_frontier_node());
}

masked_view shield_batch(const ad::graph& g, const std::vector<std::string>& frontier_tags,
                         tee::secure_store& sink, const std::string& key_prefix) {
  return masked_view{g, pelta_shield_tags(g, frontier_tags, sink, key_prefix)};
}

}  // namespace pelta::shield
