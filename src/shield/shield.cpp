#include "shield/shield.h"

#include <algorithm>

#include "tee/secure_store.h"

namespace pelta::shield {

bool shield_report::is_masked(ad::node_id id) const {
  if (id == masked_input) return true;
  if (std::find(masked_transforms.begin(), masked_transforms.end(), id) !=
      masked_transforms.end())
    return true;
  return std::find(masked_side.begin(), masked_side.end(), id) != masked_side.end();
}

namespace {

// Recursively mask the non-input-dependent side graph feeding a masked
// transform: parameter leaves and parameter-derived vertices (e.g. the
// weight-standardization node). §IV-B: "weights and biases … are regarded
// as leaf vertices" and forward quantities enabling unambiguous recovery of
// the hidden Jacobians must be masked.
void mask_side(const ad::graph& g, ad::node_id id, std::vector<bool>& side_masked) {
  if (side_masked[static_cast<std::size_t>(id)]) return;
  const ad::node& n = g.at(id);
  PELTA_CHECK(!n.input_dependent);
  side_masked[static_cast<std::size_t>(id)] = true;
  for (ad::node_id p : n.parents) mask_side(g, p, side_masked);
}

// Algorithm 1 core: every masked tensor leaves through `sink` (null = pure
// accounting). The public overloads below pick the boundary mechanism.
shield_report shield_into(const ad::graph& g, const std::vector<ad::node_id>& frontier,
                          tee::secure_store* sink, const std::string& key_prefix) {
  PELTA_CHECK_MSG(!frontier.empty(), "PELTA Select returned an empty frontier");
  const std::int64_t n = g.node_count();
  std::vector<bool> main_masked(static_cast<std::size_t>(n), false);
  std::vector<bool> side_masked(static_cast<std::size_t>(n), false);

  shield_report report;

  // Algorithm 1, Shield(): walk from each selected vertex back towards the
  // input along input-dependent edges (depth-first, iterative).
  std::vector<ad::node_id> stack;
  for (ad::node_id f : frontier) {
    const ad::node& fn = g.at(f);
    PELTA_CHECK_MSG(fn.kind == ad::node_kind::transform,
                    "frontier node " << f << " is a leaf; Select requires i > l");
    PELTA_CHECK_MSG(fn.input_dependent,
                    "frontier node " << f << " (" << fn.tag << ") does not depend on the input");
    stack.push_back(f);
  }

  while (!stack.empty()) {
    const ad::node_id id = stack.back();
    stack.pop_back();
    if (main_masked[static_cast<std::size_t>(id)]) continue;
    main_masked[static_cast<std::size_t>(id)] = true;
    const ad::node& node = g.at(id);

    if (node.kind == ad::node_kind::input) {
      report.masked_input = id;
      continue;
    }
    report.masked_transforms.push_back(id);

    for (ad::node_id p : node.parents) {
      const ad::node& parent = g.at(p);
      if (parent.input_dependent) {
        // Alg. 1 lines 8–10: local Jacobian into E, then Shield(parent).
        report.jacobians.push_back(jacobian_record{
            p, id, std::string{node.oper->name()}, node.value.numel(), parent.value.numel()});
        stack.push_back(p);
      } else if (parent.kind != ad::node_kind::constant) {
        mask_side(g, p, side_masked);
      }
    }
  }

  // Deterministic ordering (DFS above visits in reverse-depth order).
  std::sort(report.masked_transforms.begin(), report.masked_transforms.end());
  for (ad::node_id id = 0; id < n; ++id)
    if (side_masked[static_cast<std::size_t>(id)]) report.masked_side.push_back(id);

  // Accounting + enclave placement.
  const auto key = [&](const char* group, ad::node_id id) {
    return key_prefix + group + std::to_string(id);
  };
  for (ad::node_id id : report.masked_transforms) {
    const ad::node& node = g.at(id);
    report.bytes_activations += node.value.byte_size();
    if (sink != nullptr) sink->store(key("u", id), node.value);
    if (node.has_adjoint) {
      report.bytes_gradients += node.adjoint.byte_size();
      if (sink != nullptr) sink->store(key("du", id), node.adjoint);
    }
  }
  if (report.masked_input != ad::invalid_node) {
    const ad::node& input = g.at(report.masked_input);
    if (input.has_adjoint) {  // dL/dx — the attack's target quantity
      report.bytes_gradients += input.adjoint.byte_size();
      if (sink != nullptr) sink->store(key("du", report.masked_input), input.adjoint);
    }
  }
  for (ad::node_id id : report.masked_side) {
    const ad::node& node = g.at(id);
    report.bytes_parameters += node.value.byte_size();
    if (node.kind == ad::node_kind::parameter)
      report.masked_param_scalars += node.value.numel();
    if (sink != nullptr) sink->store(key("p", id), node.value);
    if (node.has_adjoint) {
      report.bytes_gradients += node.adjoint.byte_size();
      if (sink != nullptr) sink->store(key("dp", id), node.adjoint);
    }
  }

  PELTA_CHECK_MSG(report.masked_input != ad::invalid_node,
                  "shield walk never reached the model input — frontier is disconnected");
  return report;
}

std::vector<ad::node_id> resolve_frontier(const ad::graph& g,
                                          const std::vector<std::string>& frontier_tags) {
  std::vector<ad::node_id> frontier;
  for (const std::string& tag : frontier_tags) {
    const ad::node_id id = g.find_tag(tag);
    PELTA_CHECK_MSG(id != ad::invalid_node, "frontier tag '" << tag << "' not found in graph");
    frontier.push_back(id);
  }
  return frontier;
}

}  // namespace

shield_report pelta_shield(const ad::graph& g, const std::vector<ad::node_id>& frontier,
                           tee::enclave* enclave, const std::string& key_prefix) {
  if (enclave == nullptr) return shield_into(g, frontier, nullptr, key_prefix);
  tee::ecall_store port{*enclave};
  return shield_into(g, frontier, &port, key_prefix);
}

shield_report pelta_shield(const ad::graph& g, const std::vector<ad::node_id>& frontier,
                           tee::secure_store& sink, const std::string& key_prefix) {
  return shield_into(g, frontier, &sink, key_prefix);
}

shield_report pelta_shield_tags(const ad::graph& g, const std::vector<std::string>& frontier_tags,
                                tee::enclave* enclave, const std::string& key_prefix) {
  return pelta_shield(g, resolve_frontier(g, frontier_tags), enclave, key_prefix);
}

shield_report pelta_shield_tags(const ad::graph& g, const std::vector<std::string>& frontier_tags,
                                tee::secure_store& sink, const std::string& key_prefix) {
  return pelta_shield(g, resolve_frontier(g, frontier_tags), sink, key_prefix);
}

}  // namespace pelta::shield
