// The attacker's restricted white-box view of a shielded forward/backward
// pass (§IV-B). Clear vertices behave exactly like an open white box;
// masked vertices raise tee::enclave_access_error, mirroring what a probe
// of device memory would find with the enclave in place.
#pragma once

#include "shield/shield.h"

namespace pelta::shield {

class masked_view {
public:
  /// The graph must outlive the view.
  masked_view(const ad::graph& g, shield_report report);

  const ad::graph& graph() const { return *graph_; }
  const shield_report& report() const { return report_; }

  bool value_accessible(ad::node_id id) const;
  bool adjoint_accessible(ad::node_id id) const;

  /// Forward value u_i; throws enclave_access_error when masked. The model
  /// input's *value* stays readable — it is the attacker's own sample.
  const tensor& value(ad::node_id id) const;

  /// Adjoint dL/du_i; throws enclave_access_error when masked.
  const tensor& adjoint(ad::node_id id) const;

  /// dL/dx — always denied under PELTA; throws enclave_access_error.
  const tensor& input_gradient() const;

  /// All clear transforms with at least one masked parent, shallowest first.
  std::vector<ad::node_id> clear_frontier() const;

  /// u_{L+1}: the shallowest clear transform (lowest id in clear_frontier).
  ad::node_id clear_frontier_node() const;

  /// δ_{L+1} = dL/du_{L+1} — the only backward-pass quantity the paper
  /// leaves the attacker (the "under-factored gradient").
  const tensor& clear_adjoint() const;

private:
  const ad::graph* graph_;
  shield_report report_;
  std::vector<bool> masked_;  // by node id
};

/// Batched shielding entry point: run Algorithm 1 ONCE over a (possibly
/// batched, [B,...]) forward graph and return the single masked view that
/// serves every sample in the batch. Shapes of the masked quantities scale
/// with B but the graph structure — and therefore the number of stores the
/// enclave boundary pays — does not; this is what lets the serving runtime
/// charge TEE transition costs per batch instead of per request.
masked_view shield_batch(const ad::graph& g, const std::vector<std::string>& frontier_tags,
                         tee::secure_store& sink, const std::string& key_prefix = "");

}  // namespace pelta::shield
