// Select() policies (Algorithm 1 line 1) beyond the per-model defaults.
#pragma once

#include "autodiff/graph.h"

namespace pelta::shield {

/// The first k input-dependent transforms in topological order — the
/// "shield depth" knob used by the ablation bench: k = 1 masks only the
/// first transform, larger k pushes the clear frontier deeper.
std::vector<ad::node_id> select_first_k_transforms(const ad::graph& g, std::int64_t k);

/// All input-dependent transforms up to and including the node with the
/// given tag (the per-model default frontier resolves through this).
std::vector<ad::node_id> select_up_to_tag(const ad::graph& g, const std::string& tag);

}  // namespace pelta::shield
