// Related-work baseline shields, for comparison with PELTA (§II).
//
// DarkneTZ / PPFL / GradSec protect ∇θL — parameters and *their* gradients
// — against inversion/inference attacks. PELTA's observation is that this
// leaves ∇ₓL (the input gradient) in the clear, so a compromised client can
// still run every gradient-based evasion attack. param_gradient_shield
// implements that related-work policy so the claim is measurable: the
// masked set covers all parameter leaves and their adjoints, but no
// input-dependent activations or adjoints — the attacker's ∇ₓL survives.
#pragma once

#include "shield/shield.h"

namespace pelta::shield {

/// GradSec-style masking: every parameter leaf (and its adjoint) moves into
/// the enclave; the activation/adjoint chain along the input stays clear.
/// Returns a shield_report whose masked_input is invalid_node — the input
/// gradient is NOT protected by this policy.
shield_report param_gradient_shield(const ad::graph& g, tee::enclave* enclave,
                                    const std::string& key_prefix = "");

/// Can an attacker still read dL/dx under a given report? True for
/// param_gradient_shield, false for PELTA — used by tests and the
/// comparison bench.
bool input_gradient_exposed(const ad::graph& g, const shield_report& report);

}  // namespace pelta::shield
